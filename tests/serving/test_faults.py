"""Chaos suite: scripted worker failure against the self-healing fleet.

Every scenario is deterministic -- :class:`FaultPlan` scripts exactly
which worker incarnation kills, hangs, delays, corrupts, or duplicates,
so the same test observes the same failure sequence every run.  The
acceptance claim threads through all of them: worker failure changes
*when and where* batches run, never what they compute -- every
recovered request's logits are bitwise identical to in-process
execution, no worker error ever escapes ``step()``/``drain()`` as an
exception, and ``stats()`` accounts for every respawn, re-dispatch,
quarantine, shed, and degraded flush.

Process-spawning scenarios run under a fork context (instant startup).
They are core-count independent -- a 2-process fleet time-slices fine
on one CPU -- but CI additionally runs this file as a dedicated
chaos-suite step guarded to multi-core runners, where the failure
interleavings are most adversarial.
"""

import time

import numpy as np
import pytest

from repro.core import HeatViT
from repro.data import SyntheticConfig, generate_dataset
from repro.engine import InferenceSession
from repro.serving import (DEFAULT_PRIORITY, FaultPlan, FaultSpec, FrontDoor,
                           RecoveryPolicy, RetryPolicy, Scheduler,
                           VirtualClock, WorkerDiedError, WorkerPool)

#: Production backoffs are seconds; chaos tests respawn in milliseconds.
FAST_BACKOFF = RetryPolicy(attempts=4, backoff_base_s=0.01,
                           backoff_max_s=0.05)


def fast_recovery(**overrides):
    defaults = dict(restart_backoff=FAST_BACKOFF)
    defaults.update(overrides)
    return RecoveryPolicy(**defaults)


@pytest.fixture(scope="module")
def chaos_model(tiny_backbone):
    model = HeatViT(tiny_backbone, {1: 0.7, 2: 0.5},
                    rng=np.random.default_rng(31))
    model.eval()
    return model


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(32)
    config = SyntheticConfig(image_size=16, num_classes=4)
    return generate_dataset(config, 16, rng).images


@pytest.fixture(scope="module")
def reference(chaos_model, images):
    """Per-request in-process logits: the bitwise recovery oracle.

    Sliced from one full-batch run -- the engine's grouped execution
    keeps each image's rows bitwise stable across any multi-image
    re-batching, which is exactly what recovery re-dispatch produces.
    """
    session = InferenceSession(chaos_model, batch_size=16)
    logits = session.submit(images).logits
    return [logits[i:i + 1].tobytes() for i in range(images.shape[0])]


def chaos_scheduler(model, *, fault_plan, recovery=None, **kwargs):
    scheduler = Scheduler(clock=VirtualClock(), batch_window_ms=10.0)
    scheduler.register("tiny", model, batch_size=16, workers=2,
                       worker_ctx="fork", fault_plan=fault_plan,
                       recovery=recovery or fast_recovery(), **kwargs)
    return scheduler


def submit_all(scheduler, images, **kwargs):
    return [scheduler.submit(images[i], **kwargs)
            for i in range(images.shape[0])]


def assert_bitwise(results, ids, reference):
    for index, request_id in enumerate(ids):
        result = results[request_id]
        assert not result.failed, result.error
        assert result.logits.tobytes() == reference[index]


# ----------------------------------------------------------------------
# Fault scripting (no processes)
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_batch_fields_are_one_based(self):
        for field in ("kill_at_batch", "hang_at_batch",
                      "corrupt_at_batch", "duplicate_at_batch",
                      "torn_reply_at_batch"):
            with pytest.raises(ValueError, match="1-based"):
                FaultSpec(**{field: 0})
        with pytest.raises(ValueError):
            FaultSpec(delay_reply_ms=-1.0)

    def test_kill_and_hang_trigger_at_or_after(self):
        spec = FaultSpec(kill_at_batch=2, hang_at_batch=3)
        assert not spec.should_kill(1)
        assert spec.should_kill(2) and spec.should_kill(5)
        assert not spec.should_hang(2)
        assert spec.should_hang(3) and spec.should_hang(9)
        assert not FaultSpec().should_kill(100)

    def test_corrupt_and_duplicate_trigger_exactly_once(self):
        spec = FaultSpec(corrupt_at_batch=2, duplicate_at_batch=3,
                         torn_reply_at_batch=4)
        assert [spec.should_corrupt(n) for n in (1, 2, 3)] \
            == [False, True, False]
        assert [spec.should_duplicate(n) for n in (2, 3, 4)] \
            == [False, True, False]
        assert [spec.should_tear(n) for n in (3, 4, 5)] \
            == [False, True, False]

    def test_apply_delay(self):
        slept = []
        FaultSpec(delay_reply_ms=250.0).apply_delay(sleep=slept.append)
        assert slept == [0.25]
        FaultSpec().apply_delay(sleep=slept.append)   # no-op at 0
        assert slept == [0.25]


class TestFaultPlan:
    def test_bare_int_key_means_incarnation_zero(self):
        spec = FaultSpec(kill_at_batch=1)
        plan = FaultPlan({0: spec})
        assert plan.for_worker(0) is spec
        assert plan.for_worker(0, incarnation=1) is None
        assert plan.for_worker(1) is None

    def test_tuple_key_targets_a_respawn(self):
        first, second = FaultSpec(kill_at_batch=1), FaultSpec(hang_at_batch=1)
        plan = FaultPlan({(1, 0): first}).add((1, 1), second)
        assert plan.for_worker(1, 0) is first
        assert plan.for_worker(1, 1) is second
        assert len(plan) == 2
        assert "w1.i0" in repr(plan) and "w1.i1" in repr(plan)

    def test_rejects_bad_entries(self):
        with pytest.raises(TypeError):
            FaultPlan({0: "kill"})
        with pytest.raises(ValueError):
            FaultPlan({(-1, 0): FaultSpec(kill_at_batch=1)})
        with pytest.raises(ValueError):
            FaultPlan({(0, -2): FaultSpec(kill_at_batch=1)})


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        assert RetryPolicy(attempts=3).retries == 2

    def test_delay_schedule_caps_and_doubles(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_max_s=0.35,
                             jitter=0.0)
        assert [policy.delay_s(a) for a in range(4)] \
            == pytest.approx([0.1, 0.2, 0.35, 0.35])
        with pytest.raises(ValueError):
            policy.delay_s(-1)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter=0.25)
        assert policy.delay_s(1, seed=7) == policy.delay_s(1, seed=7)
        assert policy.delay_s(1, seed=7) != policy.delay_s(1, seed=8)
        for seed in range(20):
            delay = policy.delay_s(0, seed=seed)
            assert 0.075 <= delay <= 0.125

    def test_call_retries_then_succeeds(self):
        outcomes = iter([OSError("a"), OSError("b"), "ok"])
        slept, observed = [], []

        def flaky():
            result = next(outcomes)
            if isinstance(result, Exception):
                raise result
            return result

        policy = RetryPolicy(attempts=3, backoff_base_s=0.1, jitter=0.0)
        assert policy.call(flaky, retry_on=OSError, sleep=slept.append,
                           on_retry=lambda a, e: observed.append(a)) == "ok"
        assert slept == [0.1, 0.2]
        assert observed == [0, 1]

    def test_call_raises_after_budget(self):
        calls = []

        def always():
            calls.append(1)
            raise ConnectionError("down")

        policy = RetryPolicy(attempts=3, backoff_base_s=0.0)
        with pytest.raises(ConnectionError):
            policy.call(always, retry_on=ConnectionError,
                        sleep=lambda _s: None)
        assert len(calls) == 3

    def test_call_does_not_catch_other_exceptions(self):
        def boom():
            raise KeyError("not transport")

        with pytest.raises(KeyError):
            RetryPolicy(attempts=3).call(boom, retry_on=OSError)


class TestRecoveryPolicy:
    def test_validation(self):
        for bad in (dict(heartbeat_s=0.0), dict(max_worker_restarts=-1),
                    dict(dispatch_timeout_factor=0.0),
                    dict(min_dispatch_timeout_s=0.0),
                    dict(max_in_flight_per_worker=0)):
            with pytest.raises(ValueError):
                RecoveryPolicy(**bad)

    def test_request_retry_budget_comes_from_retry_policy(self):
        policy = RecoveryPolicy(retry=RetryPolicy(attempts=5))
        assert policy.max_request_retries == 4


class TestRespawnPayload:
    def test_snapshot_payload_reseeds_learned_cost(self, chaos_model):
        """A respawned worker's spec carries the parent's *current*
        learned fit -- cloned, so pickling never races the live model."""
        from repro.serving.worker import _snapshot_payload

        session = InferenceSession(chaos_model, batch_size=8,
                                   learn_cost=True)
        for num_images in (4, 8, 8, 16, 8, 4):
            session.cost_model.observe_batch(num_images,
                                             5.0 + 0.5 * num_images)
        spec = session.spec()
        clone = _snapshot_payload(spec)
        assert clone is not spec
        assert clone.cost_model is not session.cost_model
        np.testing.assert_equal(clone.cost_model.snapshot(),
                                session.cost_model.snapshot())
        # Non-spec payloads pass through untouched (pickled live).
        assert _snapshot_payload(session) is session


# ----------------------------------------------------------------------
# Pool-level supervision (real processes)
# ----------------------------------------------------------------------
class TestPoolSupervision:
    def test_dispatch_to_dead_worker_raises_then_respawn_heals(
            self, chaos_model, images):
        plan = FaultPlan({0: FaultSpec(kill_at_batch=1)})
        session = InferenceSession(chaos_model, batch_size=4)
        with WorkerPool(session, 2, ctx="fork", recovery=fast_recovery(),
                        fault_plan=plan) as pool:
            pool.dispatch(1, [images[:1]], 0)          # incarnation 0 dies
            deadline = time.monotonic() + 30.0
            while (pool._processes[0].is_alive()
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            with pytest.raises(WorkerDiedError) as excinfo:
                pool.dispatch(2, [images[:1]], 0)
            assert excinfo.value.worker == 0
            assert pool.alive_workers() == [1]
            assert not pool.fleet_down                 # budget remains
            # Supervision: the slot respawns as a healthy incarnation.
            assert pool.respawn_dead() == [0]
            assert pool.restarts == (1, 0)
            pool.dispatch(3, [images[:1]], 0)
            replies = pool.poll(timeout_s=60.0)
            deadline = time.monotonic() + 60.0
            while not replies and time.monotonic() < deadline:
                replies = pool.poll(timeout_s=1.0)
            assert [r.kind for r in replies] == ["result"]
            snapshot = pool.supervision_snapshot()
            assert snapshot["incarnations"] == (1, 0)
            assert not snapshot["fleet_down"]

    def test_idle_heartbeats_refresh_last_seen(self, chaos_model):
        session = InferenceSession(chaos_model, batch_size=4)
        recovery = fast_recovery(heartbeat_s=0.1)
        with WorkerPool(session, 1, ctx="fork", recovery=recovery) as pool:
            seen_at_start = pool.last_seen(0)
            deadline = time.monotonic() + 30.0
            while (pool.last_seen(0) == seen_at_start
                   and time.monotonic() < deadline):
                # Heartbeats are consumed by poll, never surfaced.
                assert pool.poll(timeout_s=0.05) == []
            assert pool.last_seen(0) > seen_at_start
            assert pool.supervision_snapshot()["heartbeat_age_s"][0] < 30.0

    def test_restart_budget_exhaustion_is_fleet_down(self, chaos_model,
                                                     images):
        plan = FaultPlan({0: FaultSpec(kill_at_batch=1),
                          1: FaultSpec(kill_at_batch=1)})
        session = InferenceSession(chaos_model, batch_size=4)
        recovery = fast_recovery(max_worker_restarts=0)
        with WorkerPool(session, 2, ctx="fork", recovery=recovery,
                        fault_plan=plan) as pool:
            pool.dispatch(1, [images[:1]], 0)
            pool.dispatch(2, [images[:1]], 1)
            deadline = time.monotonic() + 30.0
            while pool.alive_workers() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.alive_workers() == []
            assert pool.respawn_dead() == []           # no budget
            assert pool.fleet_down


# ----------------------------------------------------------------------
# Scheduler-level chaos scenarios
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_kill_one_of_two_mid_burst_bitwise_recovery(
            self, chaos_model, images, reference):
        """The acceptance scenario: worker 0 dies on its first batch of
        the burst.  Every request still completes -- re-dispatched to
        the survivor or the respawned slot -- with logits bitwise
        identical to in-process execution, no exception escapes the
        drain, and the recovery is fully accounted in ``stats()``."""
        plan = FaultPlan({0: FaultSpec(kill_at_batch=1)})
        scheduler = chaos_scheduler(chaos_model, fault_plan=plan)
        try:
            ids = submit_all(scheduler, images)
            drained = scheduler.drain(timeout_ms=120_000)
            results = {r.request_id: r for r in drained}
            assert sorted(results) == sorted(ids)
            assert_bitwise(results, ids, reference)
            assert scheduler.pending_requests() == 0
            assert scheduler.in_flight_batches() == 0
            stats = scheduler.stats()["sessions"]["tiny"]
            recovery = stats["recovery"]
            assert recovery["respawns"] >= 1
            assert recovery["lost_batches"] >= 1
            assert recovery["redispatched_requests"] >= 1
            assert recovery["failed_requests"] == 0
            assert recovery["degraded_flushes"] == 0
            assert not stats["degraded"]
            assert stats["fleet"]["restarts"][0] >= 1
            classes = scheduler.stats()["classes"][DEFAULT_PRIORITY]
            assert classes["completed"] == len(ids)
            assert classes["failed"] == 0
        finally:
            scheduler.shutdown(drain=False)

    def test_step_loop_survives_kill_without_raising(
            self, chaos_model, images, reference):
        """The background-serving path: non-blocking ``step()`` heals
        the same crash drain() does -- no exception ever reaches the
        stepping loop."""
        plan = FaultPlan({0: FaultSpec(kill_at_batch=1)})
        scheduler = chaos_scheduler(chaos_model, fault_plan=plan)
        try:
            ids = submit_all(scheduler, images[:8])
            scheduler.flush(wait=False)
            collected = {}
            deadline = time.monotonic() + 120.0
            while (len(collected) < len(ids)
                   and time.monotonic() < deadline):
                # Advance the virtual clock so requeued requests age
                # past the batch window and re-flush on a later step.
                scheduler.clock.advance(20.0)
                for result in scheduler.step():
                    collected[result.request_id] = result
            assert sorted(collected) == sorted(ids)
            assert_bitwise(collected, ids, reference)
            recovery = scheduler.stats()["sessions"]["tiny"]["recovery"]
            assert recovery["respawns"] >= 1
        finally:
            scheduler.shutdown(drain=False)

    def test_respawn_racing_the_sweep_does_not_strand_batches(
            self, chaos_model, images, reference):
        """Regression: a death healed by ``respawn_dead()`` *before*
        the scheduler's recovery sweep ever observed it (supervision
        races the sweep) must not strand the dead incarnation's
        in-flight batches.  Aliveness-only loss detection would see
        the respawned slot alive on both looks and wait out the full
        hung-batch deadline -- then terminate the healthy replacement.
        Incarnation-aware detection recovers the batches on the next
        sweep.  The dispatch deadline is pushed out to 300 s so a
        regression shows up as a drain timeout, not a slow pass."""
        plan = FaultPlan({0: FaultSpec(kill_at_batch=1),
                          1: FaultSpec(kill_at_batch=1)})
        recovery = fast_recovery(min_dispatch_timeout_s=300.0)
        scheduler = chaos_scheduler(chaos_model, fault_plan=plan,
                                    recovery=recovery)
        try:
            # 4 requests -> two 2-image shards: every (re)executed
            # batch stays multi-image, so the full-batch reference
            # slices apply bitwise.
            ids = submit_all(scheduler, images[:4])
            scheduler.flush(wait=False)     # one shard on each worker
            pool = scheduler.sessions[0].pool
            deadline = time.monotonic() + 30.0
            while pool.alive_workers() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert pool.alive_workers() == []
            # Supervision wins the race: both slots are respawned
            # before any scheduler sweep sees the deaths.
            respawned = set()
            while len(respawned) < 2 and time.monotonic() < deadline:
                respawned.update(pool.respawn_dead())
                time.sleep(0.01)
            assert sorted(respawned) == [0, 1]
            start = time.monotonic()
            results = {r.request_id: r
                       for r in scheduler.drain(timeout_ms=120_000)}
            assert time.monotonic() - start < 60.0
            assert sorted(results) == sorted(ids)
            assert_bitwise(results, ids, reference)
            recovery_stats = \
                scheduler.stats()["sessions"]["tiny"]["recovery"]
            assert recovery_stats["lost_batches"] >= 2
            assert recovery_stats["redispatched_requests"] >= 4
            assert recovery_stats["hung_workers"] == 0
            assert pool.supervision_snapshot()["incarnations"] == (1, 1)
        finally:
            scheduler.shutdown(drain=False)

    def test_death_mid_reply_tears_only_its_own_pipe(
            self, chaos_model, images, reference):
        """Regression for the shared-reply-queue wedge: a worker that
        dies *midway through writing a reply* must poison nothing but
        its own pipe.  A shared multiprocessing queue let the dying
        writer take the queue's cross-process write lock to the grave,
        wedging every other worker -- respawns included -- on their
        next reply until dispatch deadlines started terminating
        healthy processes.  Per-worker framed pipes confine the damage
        to one torn trailing frame, discarded with the dead
        incarnation's reader; recovery proceeds at liveness speed."""
        plan = FaultPlan({0: FaultSpec(torn_reply_at_batch=1)})
        scheduler = chaos_scheduler(chaos_model, fault_plan=plan)
        try:
            ids = submit_all(scheduler, images)
            start = time.monotonic()
            results = {r.request_id: r
                       for r in scheduler.drain(timeout_ms=120_000)}
            # Liveness catches the death; nobody waits out the 30 s
            # hung-batch deadline behind a poisoned transport.
            assert time.monotonic() - start < 25.0
            assert sorted(results) == sorted(ids)
            assert_bitwise(results, ids, reference)
            recovery = scheduler.stats()["sessions"]["tiny"]["recovery"]
            assert recovery["respawns"] >= 1
            assert recovery["lost_batches"] >= 1
            assert recovery["redispatched_requests"] >= 1
            assert recovery["failed_requests"] == 0
            assert recovery["hung_workers"] == 0
        finally:
            scheduler.shutdown(drain=False)

    def test_corrupt_reply_rejected_and_retried(self, chaos_model,
                                                images, reference):
        plan = FaultPlan({0: FaultSpec(corrupt_at_batch=1)})
        scheduler = chaos_scheduler(chaos_model, fault_plan=plan)
        try:
            ids = submit_all(scheduler, images[:8])
            results = {r.request_id: r
                       for r in scheduler.drain(timeout_ms=120_000)}
            assert sorted(results) == sorted(ids)
            assert_bitwise(results, ids, reference)
            recovery = scheduler.stats()["sessions"]["tiny"]["recovery"]
            assert recovery["corrupt_replies"] == 1
            assert recovery["redispatched_requests"] >= 1
            assert recovery["respawns"] == 0           # nobody died
        finally:
            scheduler.shutdown(drain=False)

    def test_duplicate_reply_delivered_exactly_once(self, chaos_model,
                                                    images, reference):
        plan = FaultPlan({0: FaultSpec(duplicate_at_batch=1)})
        scheduler = chaos_scheduler(chaos_model, fault_plan=plan)
        try:
            ids = submit_all(scheduler, images[:8])
            results = {r.request_id: r
                       for r in scheduler.drain(timeout_ms=120_000)}
            assert sorted(results) == sorted(ids)
            assert_bitwise(results, ids, reference)
            served = scheduler.sessions[0]
            # The duplicate trails its original on the reply pipe; give
            # collection a moment to drain and drop it.
            deadline = time.monotonic() + 30.0
            while (served.recovery["duplicate_replies"] < 1
                   and time.monotonic() < deadline):
                scheduler.step()
                time.sleep(0.01)
            assert served.recovery["duplicate_replies"] == 1
            classes = scheduler.stats()["classes"][DEFAULT_PRIORITY]
            assert classes["completed"] == len(ids)    # not len + extra
        finally:
            scheduler.shutdown(drain=False)

    def test_delayed_replies_complete_normally(self, chaos_model,
                                               images, reference):
        plan = FaultPlan({0: FaultSpec(delay_reply_ms=50.0),
                          1: FaultSpec(delay_reply_ms=50.0)})
        scheduler = chaos_scheduler(chaos_model, fault_plan=plan)
        try:
            ids = submit_all(scheduler, images[:4])
            results = {r.request_id: r
                       for r in scheduler.drain(timeout_ms=120_000)}
            assert sorted(results) == sorted(ids)
            assert_bitwise(results, ids, reference)
            recovery = scheduler.stats()["sessions"]["tiny"]["recovery"]
            assert all(count == 0 for count in recovery.values())
        finally:
            scheduler.shutdown(drain=False)


class TestHungWorker:
    def test_dispatch_deadline_terminates_and_redispatches(
            self, chaos_model, images, reference):
        """A hung worker answers nothing -- ``is_alive()`` cannot see
        it.  The cost-model-derived dispatch deadline declares the
        batch hung, the process is terminated, and its requests
        re-dispatch; the respawned incarnation serves healthily."""
        plan = FaultPlan({0: FaultSpec(hang_at_batch=1)})
        recovery = fast_recovery(min_dispatch_timeout_s=1.0,
                                 dispatch_timeout_factor=1.0)
        scheduler = chaos_scheduler(chaos_model, fault_plan=plan,
                                    recovery=recovery)
        try:
            ids = submit_all(scheduler, images[:8])
            results = {r.request_id: r
                       for r in scheduler.drain(timeout_ms=120_000)}
            assert sorted(results) == sorted(ids)
            assert_bitwise(results, ids, reference)
            stats = scheduler.stats()["sessions"]["tiny"]
            assert stats["recovery"]["hung_workers"] >= 1
            assert stats["recovery"]["lost_batches"] >= 1
            assert stats["recovery"]["respawns"] >= 1
            assert stats["fleet"]["incarnations"][0] >= 1
        finally:
            scheduler.shutdown(drain=False)


class TestPoisonQuarantine:
    def test_budget_exhausted_requests_fail_cleanly(self, chaos_model,
                                                    images, reference):
        """A batch that kills every worker it touches must not grind
        the fleet down forever: after the re-dispatch budget the
        requests come back as failed results (with the error), and the
        respawned fleet keeps serving later traffic."""
        plan = FaultPlan({0: FaultSpec(kill_at_batch=1),
                          1: FaultSpec(kill_at_batch=1)})
        # Kill faults are caught by liveness, not dispatch deadlines;
        # with a zero retry budget a *false* hung verdict on a merely
        # slow respawned worker (loaded CI host) would quarantine
        # healthy wave-2 requests, so push the deadline out of reach.
        # The hung path has its own scripted-hang test.
        recovery = fast_recovery(retry=RetryPolicy(attempts=1),
                                 min_dispatch_timeout_s=120.0)
        scheduler = chaos_scheduler(chaos_model, fault_plan=plan,
                                    recovery=recovery)
        try:
            first, second = submit_all(scheduler, images[:2])
            results = {r.request_id: r
                       for r in scheduler.drain(timeout_ms=120_000)}
            assert sorted(results) == [first, second]
            for result in results.values():
                assert result.failed
                assert result.logits is None
                assert "quarantine" in result.error
            stats = scheduler.stats()
            recovery_stats = stats["sessions"]["tiny"]["recovery"]
            assert recovery_stats["failed_requests"] == 2
            assert recovery_stats["redispatched_requests"] == 0
            classes = stats["classes"][DEFAULT_PRIORITY]
            assert classes["failed"] == 2
            assert classes["completed"] == 0
            # Incarnation 1 is healthy: the target serves again.
            ids = submit_all(scheduler, images[2:6])
            healthy = {r.request_id: r
                       for r in scheduler.drain(timeout_ms=120_000)}
            assert sorted(healthy) == sorted(ids)
            for index, request_id in zip(range(2, 6), ids):
                assert not healthy[request_id].failed
                assert healthy[request_id].logits.tobytes() \
                    == reference[index]
        finally:
            scheduler.shutdown(drain=False)

    def test_expired_sheddable_requests_shed_on_recovery(
            self, chaos_model, images):
        """Satellite: a request recovered from a lost worker whose
        deadline already passed is shed through the class's shed
        accounting, not silently served late."""
        plan = FaultPlan({0: FaultSpec(kill_at_batch=1)})
        scheduler = chaos_scheduler(chaos_model, fault_plan=plan)
        clock = scheduler.clock
        try:
            request_id = scheduler.submit(images[0], deadline_ms=5.0,
                                          priority=1)
            scheduler.flush(wait=False)        # dispatched to worker 0
            pool = scheduler.sessions[0].pool
            deadline = time.monotonic() + 30.0
            while (0 in pool.alive_workers()
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            clock.advance(10.0)                # request deadline passes
            results = {r.request_id: r
                       for r in scheduler.drain(timeout_ms=120_000)}
            assert list(results) == [request_id]
            result = results[request_id]
            assert result.failed and "shed" in result.error
            stats = scheduler.stats()
            recovery = stats["sessions"]["tiny"]["recovery"]
            assert recovery["shed_on_recovery"] == 1
            assert stats["classes"][1]["shed"] == 1
            assert stats["classes"][1]["failed"] == 1
            assert stats["classes"][1]["completed"] == 0
        finally:
            scheduler.shutdown(drain=False)


class TestFleetCollapse:
    @pytest.fixture()
    def collapsed(self, chaos_model, images):
        """Both workers dead with zero restart budget: the target is
        permanently degraded after the first burst."""
        plan = FaultPlan({0: FaultSpec(kill_at_batch=1),
                          1: FaultSpec(kill_at_batch=1)})
        recovery = fast_recovery(max_worker_restarts=0)
        scheduler = chaos_scheduler(chaos_model, fault_plan=plan,
                                    recovery=recovery)
        yield scheduler
        scheduler.shutdown(drain=False)

    def test_degrades_to_in_process_and_keeps_serving(
            self, collapsed, images, reference):
        ids = submit_all(collapsed, images[:8])
        results = {r.request_id: r
                   for r in collapsed.drain(timeout_ms=120_000)}
        assert sorted(results) == sorted(ids)
        assert_bitwise(results, ids, reference)
        stats = collapsed.stats()["sessions"]["tiny"]
        assert stats["degraded"]
        assert stats["fleet"]["fleet_down"]
        assert stats["fleet"]["alive"] == []
        assert stats["recovery"]["degraded_flushes"] >= 1
        assert stats["recovery"]["respawns"] == 0
        # Degraded mode is steady-state: later class-0 traffic still
        # completes (in-process, identical logits).  A lone request
        # executes as a 1-image batch, so its oracle is a 1-image
        # in-process run (batch composition fixes the exact bits).
        late = collapsed.submit(images[8], priority=0)
        late_results = {r.request_id: r
                        for r in collapsed.drain(timeout_ms=120_000)}
        assert not late_results[late].failed
        solo = InferenceSession(collapsed.sessions[0].session.model,
                                batch_size=16)
        assert late_results[late].logits.tobytes() \
            == solo.submit(images[8:9]).logits.tobytes()

    def test_front_door_answers_503_for_sheddable_classes(
            self, collapsed, images):
        """While the target is degraded the HTTP front door pushes
        sheddable submissions back with 503 + ``Retry-After`` but never
        turns away class 0."""
        submit_all(collapsed, images[:4])
        collapsed.drain(timeout_ms=120_000)            # trips collapse
        assert collapsed.sessions[0].degraded
        front = FrontDoor(collapsed, manage_scheduler=False)
        batch = images[:1]
        degraded = front._degraded_response(None, 1, batch)
        assert degraded is not None
        status, payload, headers = degraded
        assert status == 503
        assert payload["status"] == "unavailable"
        assert payload["retry_after_s"] == 1
        assert headers["Retry-After"] == "1"
        assert front.counters["unavailable"] == 1
        # Unnamed priority defaults to the sheddable class: pushed back.
        assert front._degraded_response(None, None, batch) is not None
        # Class 0 and unknown shapes proceed to the scheduler.
        assert front._degraded_response(None, 0, batch) is None
        wrong_shape = np.zeros((1, 3, 8, 8))
        assert front._degraded_response(None, 1, wrong_shape) is None
