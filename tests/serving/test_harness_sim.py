"""Scripted-trace simulations (acceptance criterion a).

Under bursty, uniform, and adversarial deadline traces, the
deadline-aware scheduler must bound lateness: no request completes more
than one batch window past its deadline, nothing is lost or duplicated,
and the whole simulation -- flush times, reasons, routing, logits -- is
bit-reproducible run to run.
"""

import numpy as np
import pytest

from repro.core import LatencySparsityTable
from repro.engine import InferenceSession
from repro.serving import (HighestFidelityRouter, Scheduler, VirtualClock)

from tests.serving.harness import (ServingSimulation,
                                   adversarial_deadline_trace, bursty_trace,
                                   uniform_trace)

WINDOW_MS = 5.0


def build(model, *, window_ms=WINDOW_MS, max_batch=None, **kwargs):
    clock = VirtualClock()
    scheduler = Scheduler(clock=clock, batch_window_ms=window_ms, **kwargs)
    scheduler.register("default", model, max_batch=max_batch)
    return scheduler, clock


def simulate(scheduler, clock, trace, tick_ms=1.0):
    return ServingSimulation(scheduler, clock, trace, tick_ms=tick_ms).run()


def assert_conservation(report, trace):
    """Every scripted request completed exactly once, images intact."""
    assert sorted(report.results) == sorted(report.arrivals)
    assert len(report.results) == len(trace)
    submitted = sum(a.images.shape[0] for a in report.arrivals.values())
    executed = sum(e.num_images for e in report.events)
    assert executed == submitted
    flushed_ids = [rid for e in report.events for rid in e.request_ids]
    assert sorted(flushed_ids) == sorted(report.results)   # no duplicates


class TestUniformTrace:
    def test_steady_stream_meets_loose_deadlines(self, mild_model,
                                                 tiny_dataset):
        scheduler, clock = build(mild_model)
        trace = uniform_trace(tiny_dataset.images, num_requests=15,
                              period_ms=2.0, images_per_request=2,
                              deadline_ms=3 * WINDOW_MS)
        report = simulate(scheduler, clock, trace)
        assert_conservation(report, trace)
        assert report.missed_ids == []
        assert report.max_overshoot_ms == 0.0
        # The window bounds queueing: nobody waits longer than one
        # window plus the deadline pull-forward granularity.
        assert all(res.wait_ms <= WINDOW_MS
                   for res in report.results.values())

    def test_flushes_coalesce_the_stream(self, mild_model, tiny_dataset):
        scheduler, clock = build(mild_model)
        trace = uniform_trace(tiny_dataset.images, num_requests=12,
                              period_ms=1.0)
        report = simulate(scheduler, clock, trace)
        assert_conservation(report, trace)
        # Batching must actually happen: far fewer flushes than requests.
        assert len(report.events) < len(trace)
        assert max(e.num_images for e in report.events) > 1


class TestBurstyTrace:
    def test_bursts_force_carry_over(self, mild_model, tiny_dataset):
        scheduler, clock = build(mild_model, max_batch=8)
        trace = bursty_trace(tiny_dataset.images,
                             burst_times_ms=[0.0, 7.0, 20.0],
                             burst_size=12)
        report = simulate(scheduler, clock, trace)
        assert_conservation(report, trace)
        assert any(e.reason == "capacity" for e in report.events)
        assert any(e.carried_requests > 0 for e in report.events)
        assert all(e.num_images <= 8 for e in report.events)

    def test_burst_deadlines_bounded(self, mild_model, tiny_dataset):
        scheduler, clock = build(mild_model, max_batch=8)
        trace = bursty_trace(tiny_dataset.images,
                             burst_times_ms=[0.0, 6.0, 18.0],
                             burst_size=10, deadline_ms=2 * WINDOW_MS)
        report = simulate(scheduler, clock, trace)
        assert_conservation(report, trace)
        # Acceptance (a): never more than one batch window late.
        assert report.max_overshoot_ms <= WINDOW_MS


class TestAdversarialDeadlines:
    def test_overshoot_bounded_by_one_window(self, mild_model,
                                             tiny_dataset):
        scheduler, clock = build(mild_model)
        trace = adversarial_deadline_trace(tiny_dataset.images,
                                           window_ms=WINDOW_MS)
        report = simulate(scheduler, clock, trace)
        assert_conservation(report, trace)
        # Acceptance (a): the 0.5 ms deadlines are tighter than one tick
        # and CANNOT be met -- but lateness stays under one window.
        assert report.max_overshoot_ms <= WINDOW_MS
        # Feasible deadlines (>= one tick of slack) are all met.
        for rid, arrival in report.arrivals.items():
            if arrival.deadline_ms is not None and arrival.deadline_ms >= 2.0:
                assert report.results[rid].deadline_met, (
                    f"request {rid} (deadline {arrival.deadline_ms} ms) "
                    f"overshot by {report.results[rid].overshoot_ms} ms")

    def test_edf_reorders_completion(self, mild_model, tiny_dataset):
        """Tight deadlines complete no later than earlier best-effort
        arrivals -- EDF visibly deviates from FIFO."""
        scheduler, clock = build(mild_model, max_batch=2,
                                 window_ms=20.0)
        trace = adversarial_deadline_trace(tiny_dataset.images,
                                           window_ms=20.0)
        report = simulate(scheduler, clock, trace)
        assert_conservation(report, trace)
        tight = [rid for rid, a in report.arrivals.items()
                 if a.deadline_ms is not None and a.deadline_ms <= 2.0]
        effort = [rid for rid, a in report.arrivals.items()
                  if a.deadline_ms is None]
        first_tight = min(report.results[rid].completed_ms for rid in tight)
        last_effort = max(report.results[rid].completed_ms
                          for rid in effort)
        assert first_tight <= last_effort


class TestDeterminism:
    def test_bit_reproducible_runs(self, tiny_backbone, tiny_dataset):
        """Same trace, fresh scheduler: identical events and logits."""
        from repro.core import HeatViT

        def one_run():
            model = HeatViT(tiny_backbone, {1: 0.6, 3: 0.4},
                            rng=np.random.default_rng(42))
            model.eval()
            scheduler, clock = build(model, max_batch=6)
            trace = adversarial_deadline_trace(tiny_dataset.images,
                                               window_ms=WINDOW_MS)
            return simulate(scheduler, clock, trace)

        first, second = one_run(), one_run()
        assert [(e.time_ms, e.session, e.reason, e.request_ids,
                 e.num_images, e.carried_requests)
                for e in first.events] == [
                    (e.time_ms, e.session, e.reason, e.request_ids,
                     e.num_images, e.carried_requests)
                    for e in second.events]
        assert sorted(first.results) == sorted(second.results)
        for rid in first.results:
            np.testing.assert_array_equal(first.results[rid].logits,
                                          second.results[rid].logits)
            assert (first.results[rid].completed_ms
                    == second.results[rid].completed_ms)


class TestRoutedSimulation:
    def test_fidelity_routing_under_mixed_deadlines(self, mild_model,
                                                    aggressive_model,
                                                    tiny_dataset):
        """Tight deadlines degrade to the pruned operating point, loose
        ones get the accurate model -- inside a full simulation."""
        clock = VirtualClock()
        scheduler = Scheduler(clock=clock, router=HighestFidelityRouter(),
                              batch_window_ms=WINDOW_MS)
        scheduler.register("mild", session=InferenceSession(
            mild_model, latency_table=LatencySparsityTable(
                {0.5: 10.0, 1.0: 10.0})))                 # 40 ms/image
        scheduler.register("aggressive", session=InferenceSession(
            aggressive_model, latency_table=LatencySparsityTable(
                {0.5: 1.25, 1.0: 1.25})))                 # 5 ms/image
        mixed = uniform_trace(tiny_dataset.images[:10], num_requests=5,
                              period_ms=2.0, deadline_ms=100.0)
        mixed += uniform_trace(tiny_dataset.images[10:20], num_requests=5,
                               period_ms=2.0, start_ms=1.0,
                               deadline_ms=10.0)
        report = simulate(scheduler, clock, mixed)
        assert_conservation(report, mixed)
        loose = {rid for rid, a in report.arrivals.items()
                 if a.deadline_ms == 100.0}
        tight = {rid for rid, a in report.arrivals.items()
                 if a.deadline_ms == 10.0}
        assert {report.sessions_used[rid] for rid in loose} == {"mild"}
        assert {report.sessions_used[rid]
                for rid in tight} == {"aggressive"}
        assert report.max_overshoot_ms <= WINDOW_MS
