"""Scheduler mechanics under a virtual clock: flush timing, deadline
flushes, capacity/budget caps with remainder carry-over, forced drains,
and the background-thread driver.  Every temporal assertion is exact --
the clock only moves when the test advances it."""

import threading
import time

import numpy as np
import pytest

from repro.serving import (Request, RequestQueue, Scheduler, SystemClock,
                           VirtualClock)


@pytest.fixture()
def clock():
    return VirtualClock()


def make_scheduler(model, clock, **kwargs):
    scheduler = Scheduler(clock=clock, **kwargs)
    scheduler.register("default", model)
    return scheduler


class TestFlushTiming:
    def test_no_flush_before_window(self, mild_model, clock, tiny_dataset):
        scheduler = make_scheduler(mild_model, clock, batch_window_ms=10.0)
        scheduler.submit(tiny_dataset.images[0])
        for _ in range(10):                      # t = 0 .. 9
            assert scheduler.step() == []
            clock.advance(1.0)
        results = scheduler.step()               # t = 10: window expired
        assert [r.request_id for r in results] == [0]
        assert scheduler.events[-1].reason == "window"
        assert scheduler.events[-1].time_ms == 10.0

    def test_window_flush_batches_everything_pending(self, mild_model,
                                                     clock, tiny_dataset):
        scheduler = make_scheduler(mild_model, clock, batch_window_ms=5.0)
        scheduler.submit(tiny_dataset.images[0:2])
        clock.advance(3.0)
        scheduler.submit(tiny_dataset.images[2:5])
        assert scheduler.step() == []            # newest is only 0ms old
        clock.advance(2.0)                       # oldest now 5ms old
        results = scheduler.step()
        assert sorted(r.request_id for r in results) == [0, 1]
        assert len(scheduler.events) == 1        # ONE coalesced batch
        assert scheduler.events[0].num_images == 5

    def test_deadline_forces_early_flush(self, mild_model, clock,
                                         tiny_dataset):
        scheduler = make_scheduler(mild_model, clock, batch_window_ms=50.0)
        scheduler.submit(tiny_dataset.images[0], deadline_ms=3.0)
        done = []
        while not done:
            done = scheduler.step()
            if not done:
                clock.advance(1.0)
        assert scheduler.events[-1].reason == "deadline"
        assert done[0].deadline_met
        assert done[0].completed_ms <= 3.0

    def test_deadline_of_late_arrival_pulls_flush_forward(
            self, mild_model, clock, tiny_dataset):
        """A tight-deadline request joining a lazy queue flushes it."""
        scheduler = make_scheduler(mild_model, clock, batch_window_ms=50.0)
        scheduler.submit(tiny_dataset.images[0])           # best-effort
        clock.advance(2.0)
        scheduler.submit(tiny_dataset.images[1], deadline_ms=1.0)
        assert scheduler.step() == []                      # not due yet
        clock.advance(1.0)                                 # t=3 = deadline
        results = scheduler.step()
        assert sorted(r.request_id for r in results) == [0, 1]
        assert scheduler.events[-1].reason == "deadline"

    def test_empty_step_no_events(self, mild_model, clock):
        scheduler = make_scheduler(mild_model, clock)
        assert scheduler.step() == []
        assert scheduler.events == []


class TestCapacityAndCarry:
    def test_capacity_flush_carries_remainder(self, mild_model, clock,
                                              tiny_dataset):
        scheduler = make_scheduler(mild_model, clock, batch_window_ms=10.0)
        scheduler.sessions[0].max_batch = 4
        for i in range(6):
            scheduler.submit(tiny_dataset.images[i])
        results = scheduler.step()                # t=0: full batch is due
        assert len(results) == 4
        event = scheduler.events[-1]
        assert event.reason == "capacity"
        assert event.num_images == 4
        assert event.carried_requests == 2        # remainder carried over
        assert scheduler.pending_requests() == 2
        clock.advance(10.0)                       # window flush for carry
        results = scheduler.step()
        assert len(results) == 2
        assert scheduler.events[-1].reason == "window"
        assert scheduler.pending_requests() == 0

    def test_carried_remainder_merges_with_next_burst(self, mild_model,
                                                      clock, tiny_dataset):
        scheduler = make_scheduler(mild_model, clock, batch_window_ms=10.0)
        scheduler.sessions[0].max_batch = 4
        for i in range(5):
            scheduler.submit(tiny_dataset.images[i])
        scheduler.step()                          # flush 4, carry 1
        clock.advance(1.0)
        for i in range(5, 8):
            scheduler.submit(tiny_dataset.images[i])
        results = scheduler.step()                # 1 carried + 3 new = 4
        assert len(results) == 4
        assert scheduler.events[-1].reason == "capacity"
        assert scheduler.events[-1].num_images == 4
        assert 4 in scheduler.events[-1].request_ids  # the carried one ran

    def test_requests_are_atomic(self, mild_model, clock, tiny_dataset):
        """A request's images never split across flushes."""
        scheduler = make_scheduler(mild_model, clock, batch_window_ms=10.0)
        scheduler.sessions[0].max_batch = 4
        scheduler.submit(tiny_dataset.images[0:3])
        scheduler.submit(tiny_dataset.images[3:6])
        clock.advance(10.0)
        results = scheduler.step()                # window due for both
        flushes = [e for e in scheduler.events]
        assert len(results) == 2
        assert [e.num_images for e in flushes] == [3, 3]

    def test_oversize_request_still_runs(self, mild_model, clock,
                                         tiny_dataset):
        scheduler = make_scheduler(mild_model, clock, batch_window_ms=2.0)
        scheduler.sessions[0].max_batch = 4
        scheduler.submit(tiny_dataset.images[:7])  # bigger than max_batch
        results = scheduler.step()
        assert len(results) == 1
        assert results[0].logits.shape == (7, 4)
        assert scheduler.events[-1].reason == "capacity"

    def test_latency_budget_caps_batch(self, mild_model, clock,
                                       tiny_dataset):
        scheduler = Scheduler(clock=clock, batch_window_ms=50.0,
                              latency_budget_ms=0.5)
        served = scheduler.register("default", mild_model, max_batch=100)
        # Largest prefix whose batch-aware cost (overheads included)
        # still fits the budget.
        budget_images = max(n for n in range(1, 101)
                            if served.batch_cost_ms(n) <= 0.5)
        assert budget_images >= 2                 # tiny model, cheap images
        assert budget_images + 3 <= tiny_dataset.images.shape[0]
        for i in range(budget_images + 3):
            scheduler.submit(tiny_dataset.images[i])
        results = scheduler.step()
        event = scheduler.events[-1]
        assert event.reason == "budget"
        assert event.num_images <= budget_images
        assert event.estimated_ms <= 0.5
        assert event.carried_requests == (budget_images + 3
                                          - len(results))


class TestForcedFlushAndResults:
    def test_flush_runs_everything_now(self, mild_model, clock,
                                       tiny_dataset):
        scheduler = make_scheduler(mild_model, clock, batch_window_ms=100.0)
        ids = [scheduler.submit(tiny_dataset.images[i]) for i in range(3)]
        assert scheduler.step() == []
        results = scheduler.flush()
        assert sorted(r.request_id for r in results) == ids
        assert all(e.reason == "forced" for e in scheduler.events)

    def test_flush_single_session(self, mild_model, aggressive_model,
                                  clock, tiny_dataset):
        scheduler = Scheduler(clock=clock, batch_window_ms=100.0)
        scheduler.register("mild", mild_model)
        scheduler.register("aggressive", aggressive_model)
        scheduler.submit(tiny_dataset.images[0], model="mild")
        scheduler.submit(tiny_dataset.images[1], model="aggressive")
        results = scheduler.flush("mild")
        assert [r.session for r in results] == ["mild"]
        assert scheduler.pending_requests() == 1   # aggressive untouched

    def test_pop_result(self, mild_model, clock, tiny_dataset):
        scheduler = make_scheduler(mild_model, clock)
        request_id = scheduler.submit(tiny_dataset.images[0])
        assert scheduler.pop_result(request_id) is None
        scheduler.flush()
        result = scheduler.pop_result(request_id)
        assert result.request_id == request_id
        assert scheduler.pop_result(request_id) is None   # consumed

    def test_wait_result_timeout(self, mild_model, clock, tiny_dataset):
        scheduler = make_scheduler(mild_model, clock)
        request_id = scheduler.submit(tiny_dataset.images[0])
        with pytest.raises(TimeoutError):
            scheduler.wait_result(request_id, timeout_ms=10.0)

    def test_result_fields(self, mild_model, clock, tiny_dataset):
        scheduler = make_scheduler(mild_model, clock, batch_window_ms=5.0)
        clock.advance(7.0)
        request_id = scheduler.submit(tiny_dataset.images[0:2],
                                      deadline_ms=20.0)
        clock.advance(5.0)
        result, = scheduler.step()
        assert result.request_id == request_id
        assert result.session == "default"
        assert result.logits.shape == (2, 4)
        assert result.latency_ms.shape == (2,)
        assert np.all(result.latency_ms > 0)
        assert result.predictions.shape == (2,)
        assert result.arrival_ms == 7.0
        assert result.completed_ms == 12.0
        assert result.wait_ms == 5.0
        assert result.deadline_ms == 27.0       # stored absolute
        assert result.deadline_met and result.overshoot_ms == 0.0
        assert len(result.tokens_per_stage) == 1
        assert result.tokens_per_stage[0].shape == (2,)


class TestValidation:
    def test_submit_requires_registration(self, clock, tiny_dataset):
        scheduler = Scheduler(clock=clock)
        with pytest.raises(RuntimeError):
            scheduler.submit(tiny_dataset.images[0])

    def test_register_exactly_one_source(self, mild_model, clock):
        scheduler = Scheduler(clock=clock)
        with pytest.raises(ValueError):
            scheduler.register("x")
        with pytest.raises(ValueError):
            scheduler.register("x", mild_model,
                               session=scheduler)   # both given

    def test_register_duplicate_name(self, mild_model, clock):
        scheduler = Scheduler(clock=clock)
        scheduler.register("x", mild_model)
        with pytest.raises(ValueError):
            scheduler.register("x", mild_model)

    def test_bad_images(self, mild_model, clock):
        scheduler = make_scheduler(mild_model, clock)
        with pytest.raises(ValueError):
            scheduler.submit(np.zeros((0, 3, 16, 16)))
        with pytest.raises(ValueError):
            scheduler.submit(np.zeros((16, 16)))

    def test_single_image_is_promoted(self, mild_model, clock,
                                      tiny_dataset):
        scheduler = make_scheduler(mild_model, clock)
        scheduler.submit(tiny_dataset.images[0])        # (C, H, W)
        result, = scheduler.flush()
        assert result.logits.shape == (1, 4)

    def test_bad_deadline_and_unknown_model(self, mild_model, clock,
                                            tiny_dataset):
        scheduler = make_scheduler(mild_model, clock)
        with pytest.raises(ValueError):
            scheduler.submit(tiny_dataset.images[0], deadline_ms=0.0)
        with pytest.raises(KeyError):
            scheduler.submit(tiny_dataset.images[0], model="nope")

    def test_bad_scheduler_params(self, clock):
        with pytest.raises(ValueError):
            Scheduler(clock=clock, batch_window_ms=-1.0)
        with pytest.raises(ValueError):
            Scheduler(clock=clock, latency_budget_ms=0.0)
        with pytest.raises(TypeError):
            Scheduler(clock=object())

    def test_bad_max_batch(self, mild_model, clock):
        scheduler = Scheduler(clock=clock)
        with pytest.raises(ValueError):
            scheduler.register("x", mild_model, max_batch=0)

    def test_wrong_image_shape_rejected_at_submit(self, mild_model,
                                                  clock):
        """Malformed images must fail fast at submit, never poison a
        flush batch alongside well-formed requests."""
        scheduler = make_scheduler(mild_model, clock)
        with pytest.raises(ValueError):
            scheduler.submit(np.zeros((3, 8, 8)))      # wrong H, W
        with pytest.raises(ValueError):
            scheduler.submit(np.zeros((2, 1, 16, 16)))  # wrong channels
        assert scheduler.pending_requests() == 0

    def test_failed_execution_requeues_batch(self, mild_model, clock,
                                             tiny_dataset):
        """An executor failure loses no co-batched requests."""
        scheduler = make_scheduler(mild_model, clock)
        scheduler.submit(tiny_dataset.images[0])
        scheduler.submit(tiny_dataset.images[1])
        session = scheduler.sessions[0].session
        original = session.submit_many

        def boom(groups, record=None):
            raise RuntimeError("executor died")

        session.submit_many = boom
        with pytest.raises(RuntimeError):
            scheduler.flush()
        assert scheduler.pending_requests() == 2       # nothing lost
        session.submit_many = original
        assert len(scheduler.flush()) == 2

    def test_router_only_sees_shape_compatible_sessions(self, mild_model,
                                                        clock,
                                                        tiny_dataset):
        """With mixed image sizes registered, requests route among the
        sessions that actually serve their shape; a shape nobody serves
        is rejected with the registered shapes listed."""
        from repro.core import HeatViT
        from repro.vit import VisionTransformer, ViTConfig

        small_config = ViTConfig(name="small", image_size=8, patch_size=4,
                                 embed_dim=24, depth=2, num_heads=3,
                                 num_classes=4)
        small = HeatViT(VisionTransformer(small_config,
                                          rng=np.random.default_rng(3)),
                        {1: 0.6}, rng=np.random.default_rng(4))
        small.eval()
        scheduler = Scheduler(clock=clock, batch_window_ms=5.0)
        scheduler.register("small", small)          # (3, 8, 8)
        scheduler.register("large", mild_model)     # (3, 16, 16)
        large_id = scheduler.submit(tiny_dataset.images[0])
        small_id = scheduler.submit(np.zeros((3, 8, 8)))
        results = {r.request_id: r.session for r in scheduler.flush()}
        assert results == {large_id: "large", small_id: "small"}
        with pytest.raises(ValueError, match="registered shapes"):
            scheduler.submit(np.zeros((3, 32, 32)))

    def test_events_log_is_bounded(self, mild_model, clock, tiny_dataset):
        scheduler = Scheduler(clock=clock, batch_window_ms=100.0,
                              max_events=2)
        scheduler.register("default", mild_model)
        for i in range(4):
            scheduler.submit(tiny_dataset.images[i])
            scheduler.flush()
        assert len(scheduler.events) == 2
        assert scheduler.events[-1].request_ids == [3]   # newest kept
        with pytest.raises(ValueError):
            Scheduler(clock=clock, max_events=0)

    def test_estimate_tracks_operating_point(self, mild_model, clock):
        """ServedModel pricing follows set_keep_ratios retuning
        automatically -- no manual invalidation required."""
        scheduler = make_scheduler(mild_model, clock)
        served = scheduler.sessions[0]
        before = served.marginal_image_ms
        before_batch = served.batch_cost_ms(4)
        mild_model.set_keep_ratios([0.5])
        assert served.marginal_image_ms <= before
        assert served.batch_cost_ms(4) <= before_batch
        assert served.marginal_image_ms == (
            served.session.marginal_image_ms)
        mild_model.set_keep_ratios([0.8])
        assert served.marginal_image_ms == before
        assert served.batch_cost_ms(4) == before_batch

    def test_flush_cost_includes_batch_overhead(self, mild_model, clock,
                                                tiny_dataset):
        """FlushEvent.estimated_ms is the CostModel batch price: the
        per-batch overhead plus the per-image marginals, not a bare
        per-image multiple."""
        scheduler = make_scheduler(mild_model, clock)
        served = scheduler.sessions[0]
        assert served.cost_model.batch_overhead_ms > 0
        for i in range(3):
            scheduler.submit(tiny_dataset.images[i])
        scheduler.flush()
        event = scheduler.events[-1]
        assert event.num_images == 3
        assert event.estimated_ms == pytest.approx(
            served.cost_model.batch_overhead_ms
            + 3 * served.marginal_image_ms)

    def test_virtual_clock_monotonic(self):
        clock = VirtualClock(start_ms=5.0)
        assert clock.now() == 5.0
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestRequestQueue:
    def make_request(self, request_id, arrival, deadline=None, images=1):
        return Request(request_id=request_id,
                       images=np.zeros((images, 3, 4, 4)),
                       arrival_ms=arrival, deadline_ms=deadline)

    def test_edf_order_with_fifo_ties(self):
        queue = RequestQueue()
        queue.push(self.make_request(0, arrival=0.0))              # no ddl
        queue.push(self.make_request(1, arrival=1.0, deadline=9.0))
        queue.push(self.make_request(2, arrival=2.0, deadline=4.0))
        queue.push(self.make_request(3, arrival=3.0))              # no ddl
        order = [r.request_id for r in queue.snapshot()]
        assert order == [2, 1, 0, 3]
        assert queue.earliest_deadline_ms == 4.0
        assert queue.oldest_arrival_ms == 0.0

    def test_pop_batch_respects_caps_but_takes_first(self):
        queue = RequestQueue()
        queue.push(self.make_request(0, arrival=0.0, images=5))
        queue.push(self.make_request(1, arrival=1.0, images=5))
        taken = queue.pop_batch(max_images=3)     # first always pops
        assert [r.request_id for r in taken] == [0]
        taken = queue.pop_batch(max_images=3)
        assert [r.request_id for r in taken] == [1]
        assert len(queue) == 0

    def test_pop_batch_latency_budget(self):
        queue = RequestQueue()
        for i in range(4):
            queue.push(self.make_request(i, arrival=float(i), images=2))
        taken = queue.pop_batch(latency_budget_ms=5.0,
                                batch_cost_ms=lambda n: n * 1.0)
        assert [r.request_id for r in taken] == [0, 1]   # 2 + 2 <= 5 < 6
        assert queue.pending_images == 4

    def test_pop_batch_budget_prices_overhead_once(self):
        """The prefix is priced as ONE batch: a fixed overhead is not
        re-paid per request, so more requests fit than a per-request
        accumulation would admit."""
        queue = RequestQueue()
        for i in range(4):
            queue.push(self.make_request(i, arrival=float(i), images=2))
        taken = queue.pop_batch(latency_budget_ms=10.0,
                                batch_cost_ms=lambda n: 3.0 + n * 1.0)
        assert [r.request_id for r in taken] == [0, 1, 2]  # 3 + 6 <= 10
        assert queue.pending_images == 2

    def test_pop_batch_budget_requires_pricer(self):
        queue = RequestQueue()
        queue.push(self.make_request(0, arrival=0.0, images=2))
        with pytest.raises(ValueError):
            queue.pop_batch(latency_budget_ms=5.0)

    def test_push_rejects_empty(self):
        queue = RequestQueue()
        with pytest.raises(ValueError):
            queue.push(self.make_request(0, arrival=0.0, images=0))


class TestBackgroundThread:
    def test_threaded_serving_smoke(self, mild_model, tiny_dataset):
        """Real clock + background stepping; generous bounds, no flake."""
        scheduler = Scheduler(clock=SystemClock(), batch_window_ms=1.0)
        scheduler.register("default", mild_model)
        scheduler.start(poll_ms=1.0)
        try:
            request_id = scheduler.submit(tiny_dataset.images[:3])
            result = scheduler.wait_result(request_id, timeout_ms=10_000.0)
            assert result.logits.shape == (3, 4)
        finally:
            scheduler.stop()

    def test_stop_drains(self, mild_model, tiny_dataset):
        scheduler = Scheduler(clock=SystemClock(), batch_window_ms=10_000.0)
        scheduler.register("default", mild_model)
        scheduler.start(poll_ms=1.0)
        request_id = scheduler.submit(tiny_dataset.images[0])
        leftovers = scheduler.stop()              # window never expired
        assert request_id in [r.request_id for r in leftovers]
        assert scheduler.stop() == []             # idempotent

    def test_background_failure_wakes_waiters(self, mild_model,
                                              tiny_dataset):
        """A dying step thread surfaces its error instead of hanging
        every wait_result caller forever."""
        scheduler = Scheduler(clock=SystemClock(), batch_window_ms=1.0)
        scheduler.register("default", mild_model)
        session = scheduler.sessions[0].session

        def boom(groups, record=None):
            raise RuntimeError("executor died")

        session.submit_many = boom
        scheduler.start(poll_ms=1.0)
        try:
            request_id = scheduler.submit(tiny_dataset.images[0])
            with pytest.raises(RuntimeError, match="background thread"):
                scheduler.wait_result(request_id, timeout_ms=10_000.0)
            assert scheduler.pending_requests() == 1   # requeued, not lost
        finally:
            scheduler._thread.join(timeout=5.0)
            scheduler._thread = None
            scheduler._stop_event = None

    def test_register_after_start(self, mild_model, aggressive_model,
                                  tiny_dataset):
        """Late registration is safe against the stepping thread."""
        scheduler = Scheduler(clock=SystemClock(), batch_window_ms=1.0)
        scheduler.register("mild", mild_model)
        scheduler.start(poll_ms=1.0)
        try:
            scheduler.register("aggressive", aggressive_model)
            request_id = scheduler.submit(tiny_dataset.images[0],
                                          model="aggressive")
            result = scheduler.wait_result(request_id, timeout_ms=10_000.0)
            assert result.session == "aggressive"
        finally:
            scheduler.stop()

    def test_double_start_raises(self, mild_model):
        scheduler = Scheduler(clock=SystemClock())
        scheduler.register("default", mild_model)
        scheduler.start()
        try:
            with pytest.raises(RuntimeError):
                scheduler.start()
        finally:
            scheduler.stop()


class TestDataclassEqRegression:
    """Regression: the generated dataclass ``__eq__`` compared numpy
    fields element-wise, so ``request in some_list`` raised
    ``ValueError: the truth value of an array with more than one
    element is ambiguous`` the moment two *distinct* records were
    compared.  Both records are now ``eq=False`` (identity
    semantics)."""

    def test_request_membership_does_not_raise(self):
        first = Request(request_id=0, images=np.zeros((2, 3, 4, 4)),
                        arrival_ms=0.0)
        second = Request(request_id=1, images=np.zeros((2, 3, 4, 4)),
                         arrival_ms=1.0)
        assert first not in [second]          # raised before the fix
        assert first in [second, first]
        assert first != second and first == first

    def test_result_membership_does_not_raise(self):
        from repro.serving import RequestResult

        def make(request_id):
            return RequestResult(
                request_id=request_id, logits=np.zeros((2, 4)),
                latency_ms=np.zeros(2), session="s", arrival_ms=0.0,
                completed_ms=1.0)

        first, second = make(0), make(1)
        assert first not in [second]          # raised before the fix
        assert first in [second, first]
        assert first != second

    def test_hashable_as_dict_keys(self):
        request = Request(request_id=0, images=np.zeros((1, 3, 4, 4)),
                          arrival_ms=0.0)
        assert {request: "x"}[request] == "x"


class TestQueueScaling:
    """Regression: ``pop_batch`` re-sorted the whole backlog on every
    call and removed taken requests with ``list.remove`` (an O(n)
    identity scan each), turning a large-backlog drain into O(n^2)
    comparisons of a key that touches numpy fields.  The queue now
    keeps itself sorted on ``push`` (bisect) and deletes the popped
    prefix by index."""

    BACKLOG = 20_000

    def _fill(self, queue, rng):
        payload = np.zeros((1, 3, 4, 4))
        deadlines = rng.permutation(self.BACKLOG).astype(float)
        for i in range(self.BACKLOG):
            queue.push(Request(request_id=i, images=payload,
                               arrival_ms=float(i),
                               deadline_ms=deadlines[i]))
        return deadlines

    def test_large_backlog_drains_fast_and_in_edf_order(self):
        import time as time_module

        queue = RequestQueue()
        rng = np.random.default_rng(0)
        start = time_module.monotonic()
        self._fill(queue, rng)
        popped = []
        while len(queue):
            batch = queue.pop_batch(max_images=64)
            assert batch
            popped.extend(batch)
        elapsed = time_module.monotonic() - start
        # Generous absolute bound: the O(n^2) implementation took tens
        # of seconds at this size; the sorted queue is well under a
        # second even on a loaded CI box.
        assert elapsed < 10.0
        assert len(popped) == self.BACKLOG
        deadlines = [r.deadline_ms for r in popped]
        assert deadlines == sorted(deadlines)   # global EDF order

    def test_interleaved_push_pop_stays_sorted(self):
        queue = RequestQueue()
        payload = np.zeros((1, 3, 4, 4))
        rng = np.random.default_rng(1)
        popped = []
        next_id = 0
        for _ in range(200):
            for _ in range(rng.integers(1, 6)):
                queue.push(Request(request_id=next_id, images=payload,
                                   arrival_ms=float(next_id),
                                   deadline_ms=float(rng.integers(0, 1000))))
                next_id += 1
            popped.extend(queue.pop_batch(max_images=2))
        popped.extend(queue.pop_batch())
        assert len(popped) == next_id
        snapshot_ids = {r.request_id for r in popped}
        assert snapshot_ids == set(range(next_id))


class TestConcurrentRegistrySubmit:
    """Regression: ``submit`` (and ``flush``) read ``self._served``
    with no ``_registry_lock``, so a concurrent ``register`` mutating
    the dict could surface as a RuntimeError (dict changed size during
    iteration) or route against a half-updated registry.  Both paths
    now snapshot the registry under the lock."""

    def test_register_while_submitting(self, mild_model, tiny_dataset):
        scheduler = Scheduler(clock=SystemClock(), batch_window_ms=50.0)
        scheduler.register("default", mild_model)
        base_session = scheduler.sessions[0].session
        errors = []
        stop = threading.Event()

        def registrar():
            index = 0
            while not stop.is_set():
                try:
                    scheduler.register(f"extra-{index}",
                                       session=base_session)
                except Exception as exc:
                    errors.append(exc)
                    return
                index += 1

        def submitter():
            index = 0
            while not stop.is_set():
                try:
                    scheduler.submit(tiny_dataset.images[index % 8],
                                     model="default")
                    scheduler.flush("default")
                except Exception as exc:
                    errors.append(exc)
                    return
                index += 1

        threads = [threading.Thread(target=registrar)] + [
            threading.Thread(target=submitter) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(1.0)
        stop.set()
        for thread in threads:
            thread.join()
        assert errors == []
        scheduler.drain()
        assert scheduler.pending_requests() == 0
