"""Deterministic serving-simulation harness: virtual clock + scripted traces.

The scheduler's interesting behavior -- flush timing, deadline misses,
routing decisions, remainder carry-over -- is all *temporal*, which
normally means flaky sleep-based tests.  Here time is a
:class:`repro.serving.VirtualClock` the simulation advances in fixed
ticks, arrivals are scripted :class:`Arrival` records delivered exactly
at their timestamps, and every outcome (completion times, flush events,
per-request logits) is bit-reproducible, so tests assert scheduler
behavior *exactly*, with no real sleeps.

Trace builders cover the workload shapes the paper's serving story
cares about: steady request streams (:func:`uniform_trace`), bursts
that stress batch formation and carry-over (:func:`bursty_trace`), and
adversarial deadline mixes -- deadlines tighter than a tick, deadlines
interleaved loose/tight to shuffle the EDF order, best-effort traffic
mixed in (:func:`adversarial_deadline_trace`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serving import AdmissionError
from repro.serving.trace import synth_images

__all__ = ["Arrival", "SimulationReport", "ServingSimulation",
           "uniform_trace", "bursty_trace", "adversarial_deadline_trace",
           "arrivals_from_trace", "two_tier_arrivals"]


@dataclass(eq=False)
class Arrival:
    """One scripted request: delivered when the clock reaches ``at_ms``.

    ``deadline_ms`` is relative to the arrival (as clients specify it);
    ``priority`` is the SLO class (``None`` = scheduler default);
    ``model`` optionally pins a session, bypassing the router.
    (``eq=False``: field-wise comparison over the numpy payload would
    raise, the same dataclass trap fixed on ``Request``.)
    """

    at_ms: float
    images: np.ndarray
    deadline_ms: float = None
    priority: int = None
    model: str = None


@dataclass
class SimulationReport:
    """Everything one simulation run produced, keyed by request id."""

    results: dict                 # request_id -> RequestResult
    arrivals: dict                # request_id -> Arrival (as submitted)
    events: list                  # scheduler FlushEvents, in order
    final_ms: float
    shed: list = field(default_factory=list)  # (Arrival, AdmissionError)

    def hit_rate(self, priority=None):
        """Deadline-hit rate over deadline-carrying completions,
        optionally restricted to one priority class."""
        judged = [res for res in self.results.values()
                  if res.deadline_ms is not None
                  and (priority is None or res.priority == priority)]
        if not judged:
            return None
        return sum(res.deadline_met for res in judged) / len(judged)

    @property
    def completed_ids(self):
        return sorted(self.results)

    @property
    def sessions_used(self):
        """Routing decisions: request_id -> session name."""
        return {rid: res.session for rid, res in self.results.items()}

    def overshoots_ms(self):
        """Per-request deadline overshoot (only deadline-carrying ones)."""
        return {rid: res.overshoot_ms for rid, res in self.results.items()
                if res.deadline_ms is not None}

    @property
    def max_overshoot_ms(self):
        overshoots = self.overshoots_ms()
        return max(overshoots.values()) if overshoots else 0.0

    @property
    def missed_ids(self):
        return sorted(rid for rid, res in self.results.items()
                      if not res.deadline_met)


class ServingSimulation:
    """Tick-driven executor for a scripted arrival trace.

    Each tick delivers the arrivals whose time has come, then calls
    ``scheduler.step()`` and collects completions; the virtual clock
    advances by ``tick_ms`` between ticks.  The run ends when every
    arrival has been delivered and every request completed (bounded by
    ``until_ms`` as a runaway guard).
    """

    def __init__(self, scheduler, clock, arrivals, tick_ms=1.0):
        if scheduler.clock is not clock:
            raise ValueError("scheduler must use the simulation's clock")
        if tick_ms <= 0:
            raise ValueError("tick_ms must be > 0")
        self.scheduler = scheduler
        self.clock = clock
        self.arrivals = sorted(arrivals, key=lambda a: a.at_ms)
        self.tick_ms = float(tick_ms)
        self.shed = []          # (Arrival, AdmissionError) rejections

    def run(self, until_ms=None):
        if until_ms is None:
            last = self.arrivals[-1].at_ms if self.arrivals else 0.0
            until_ms = last + 100.0 * max(
                self.scheduler.batch_window_ms, self.tick_ms)
        results, submitted = {}, {}
        queue = list(self.arrivals)
        while True:
            now = self.clock.now()
            while queue and queue[0].at_ms <= now:
                arrival = queue.pop(0)
                try:
                    request_id = self.scheduler.submit(
                        arrival.images, deadline_ms=arrival.deadline_ms,
                        priority=arrival.priority, model=arrival.model)
                except AdmissionError as exc:
                    self.shed.append((arrival, exc))
                    continue
                submitted[request_id] = arrival
            for result in self.scheduler.step():
                results[result.request_id] = result
            if not queue and not self.scheduler.pending_requests():
                break
            if now >= until_ms:
                raise AssertionError(
                    f"simulation did not drain by {until_ms} ms: "
                    f"{len(queue)} arrivals pending, "
                    f"{self.scheduler.pending_requests()} requests queued")
            self.clock.advance(self.tick_ms)
        return SimulationReport(results=results, arrivals=submitted,
                                events=list(self.scheduler.events),
                                final_ms=self.clock.now(),
                                shed=list(self.shed))


# ----------------------------------------------------------------------
# Trace builders
# ----------------------------------------------------------------------
def _split(images, sizes):
    """Chop an image stack into consecutive requests of the given sizes."""
    pieces, offset = [], 0
    for size in sizes:
        if offset + size > images.shape[0]:
            raise ValueError("not enough images for the requested trace")
        pieces.append(images[offset:offset + size])
        offset += size
    return pieces


def uniform_trace(images, *, num_requests, period_ms, images_per_request=1,
                  deadline_ms=None, model=None, start_ms=0.0):
    """A steady stream: one request every ``period_ms``."""
    pieces = _split(images, [images_per_request] * num_requests)
    return [Arrival(at_ms=start_ms + i * period_ms, images=piece,
                    deadline_ms=deadline_ms, model=model)
            for i, piece in enumerate(pieces)]


def bursty_trace(images, *, burst_times_ms, burst_size,
                 images_per_request=1, deadline_ms=None, model=None):
    """Bursts of ``burst_size`` simultaneous requests at scripted times."""
    sizes = [images_per_request] * (len(burst_times_ms) * burst_size)
    pieces = iter(_split(images, sizes))
    return [Arrival(at_ms=at, images=next(pieces), deadline_ms=deadline_ms,
                    model=model)
            for at in burst_times_ms for _ in range(burst_size)]


def adversarial_deadline_trace(images, *, start_ms=0.0, spacing_ms=1.0,
                               window_ms=5.0):
    """A deadline mix built to stress EDF ordering and flush timing.

    Cycles through: a deadline tighter than one tick (can only complete
    late, but must stay within one batch window), a tight-but-feasible
    deadline, best-effort traffic, and a deadline looser than the batch
    window (must NOT be flushed early on its own account) -- with later
    arrivals carrying earlier deadlines than already-queued requests,
    so completion order must deviate from arrival order.
    """
    patterns = [0.5, 2.0, None, 4.0 * window_ms, 1.5, None]
    sizes = [1 + (i % 3) for i in range(len(patterns) * 3)]
    pieces = _split(images, sizes)
    return [Arrival(at_ms=start_ms + i * spacing_ms, images=piece,
                    deadline_ms=patterns[i % len(patterns)])
            for i, piece in enumerate(pieces)]


def arrivals_from_trace(trace, image_shape):
    """Materialize :class:`repro.serving.trace.TraceRequest` records as
    simulation arrivals -- the bridge between the replayable JSONL
    trace format and the deterministic virtual-clock harness.  Payloads
    come from the trace seeds (:func:`repro.serving.synth_images`), so
    a trace file determines the simulation bit for bit."""
    return [Arrival(at_ms=r.at_ms, images=r.images(image_shape),
                    deadline_ms=r.deadline_ms, priority=r.priority,
                    model=r.model)
            for r in sorted(trace, key=lambda r: r.at_ms)]


def two_tier_arrivals(image_shape, **kwargs):
    """A :func:`repro.serving.two_tier_trace` materialized for the
    simulation harness (premium stream + bursty sheddable bulk)."""
    from repro.serving import two_tier_trace

    return arrivals_from_trace(two_tier_trace(**kwargs), image_shape)
