"""SLO tiers, admission control, and flush preemption.

Everything runs under a virtual clock: tier deadlines, degrade/shed
decisions, and preemption timing are asserted exactly.  The two-tier
overload simulation at the bottom is the deterministic twin of the
HTTP benchmark's acceptance bar: premium (class-0) traffic keeps its
deadline-hit rate >= 0.95 while admission control degrades or sheds
the bulk class instead of letting it drag class 0 past its deadlines.
"""

import numpy as np
import pytest

from repro.serving import (AdmissionError, HighestFidelityRouter, Scheduler,
                           VirtualClock, two_tier_trace)
from tests.serving.harness import ServingSimulation, two_tier_arrivals


@pytest.fixture()
def clock():
    return VirtualClock()


class TestPriorityTiers:
    def test_tier_deadline_applies_when_none_given(self, mild_model, clock,
                                                   tiny_dataset):
        scheduler = Scheduler(clock=clock, batch_window_ms=100.0,
                              priority_tiers={0: 5.0, 1: 50.0})
        scheduler.register("default", mild_model)
        clock.advance(3.0)
        scheduler.submit(tiny_dataset.images[0], priority=0)
        scheduler.submit(tiny_dataset.images[1], priority=1)
        scheduler.submit(tiny_dataset.images[2], priority=7)  # no tier
        by_id = {r.request_id: r for r in scheduler.flush()}
        assert by_id[0].deadline_ms == 8.0          # 3.0 + tier 0
        assert by_id[1].deadline_ms == 53.0         # 3.0 + tier 1
        assert by_id[2].deadline_ms is None         # unmapped class
        assert by_id[0].priority == 0 and by_id[2].priority == 7

    def test_explicit_deadline_beats_tier(self, mild_model, clock,
                                          tiny_dataset):
        scheduler = Scheduler(clock=clock, priority_tiers={0: 5.0})
        scheduler.register("default", mild_model)
        scheduler.submit(tiny_dataset.images[0], priority=0,
                         deadline_ms=17.0)
        result, = scheduler.flush()
        assert result.deadline_ms == 17.0

    def test_priority_outranks_deadline_in_pop_order(self, mild_model,
                                                     clock, tiny_dataset):
        """Class 0 pops before a class-1 request with an earlier
        deadline: priorities are strict tiers, EDF orders within."""
        scheduler = Scheduler(clock=clock, batch_window_ms=100.0,
                              preempt_priority=None)
        served = scheduler.register("default", mild_model)
        scheduler.submit(tiny_dataset.images[0], priority=1,
                         deadline_ms=1.0)
        scheduler.submit(tiny_dataset.images[1], priority=0,
                         deadline_ms=500.0)
        order = [r.priority for r in served.queue.snapshot()]
        assert order == [0, 1]

    def test_validation(self, clock, mild_model, tiny_dataset):
        with pytest.raises(ValueError):
            Scheduler(clock=clock, priority_tiers={-1: 5.0})
        with pytest.raises(ValueError):
            Scheduler(clock=clock, priority_tiers={0: 0.0})
        with pytest.raises(ValueError):
            Scheduler(clock=clock, admission_capacity_ms=0.0)
        scheduler = Scheduler(clock=clock)
        scheduler.register("default", mild_model)
        with pytest.raises(ValueError):
            scheduler.submit(tiny_dataset.images[0], priority=-1)


class TestAdmissionControl:
    def test_sheds_when_priced_backlog_exceeds_capacity(
            self, mild_model, clock, tiny_dataset):
        scheduler = Scheduler(clock=clock, batch_window_ms=100.0,
                              preempt_priority=None)
        served = scheduler.register("default", mild_model)
        # Capacity admits exactly one queued image plus the newcomer.
        scheduler.admission_capacity_ms = served.batch_cost_ms(2)
        scheduler.submit(tiny_dataset.images[0])          # fills capacity
        scheduler.submit(tiny_dataset.images[1])          # exactly at cap
        with pytest.raises(AdmissionError) as excinfo:
            scheduler.submit(tiny_dataset.images[2])
        assert excinfo.value.priority == 1
        assert excinfo.value.backlog_ms > excinfo.value.capacity_ms
        assert scheduler.pending_requests() == 2          # shed, not queued
        stats = scheduler.stats()
        assert stats["classes"][1]["shed"] == 1
        assert stats["classes"][1]["submitted"] == 2

    def test_class_zero_is_never_shed(self, mild_model, clock,
                                      tiny_dataset):
        scheduler = Scheduler(clock=clock, batch_window_ms=100.0,
                              preempt_priority=None)
        served = scheduler.register("default", mild_model)
        scheduler.admission_capacity_ms = served.batch_cost_ms(1) / 2
        for i in range(4):                     # way past capacity
            scheduler.submit(tiny_dataset.images[i], priority=0)
        assert scheduler.pending_requests() == 4

    def test_degrades_to_cheaper_session_before_shedding(
            self, mild_model, aggressive_model, clock, tiny_dataset):
        """Overload on the routed (highest-fidelity) target re-routes
        sheddable traffic to the cheaper operating point -- the INFaaS
        move -- and only sheds when that is full too."""
        scheduler = Scheduler(clock=clock, batch_window_ms=100.0,
                              router=HighestFidelityRouter(),
                              preempt_priority=None)
        mild = scheduler.register("mild", mild_model)
        aggressive = scheduler.register("aggressive", aggressive_model)
        assert (aggressive.marginal_image_ms < mild.marginal_image_ms)
        scheduler.admission_capacity_ms = mild.batch_cost_ms(2)
        ids = [scheduler.submit(tiny_dataset.images[i]) for i in range(2)]
        assert len(mild.queue) == 2                 # router's first choice
        degraded_id = scheduler.submit(tiny_dataset.images[2])
        assert len(aggressive.queue) == 1           # degraded, not shed
        assert scheduler.stats()["classes"][1]["degraded"] == 1
        # The degraded request really executes on the cheaper session.
        results = {r.request_id: r for r in scheduler.flush()}
        assert results[degraded_id].session == "aggressive"
        assert all(results[i].session == "mild" for i in ids)

    def test_sheds_when_every_candidate_is_full(
            self, mild_model, aggressive_model, clock, tiny_dataset):
        scheduler = Scheduler(clock=clock, batch_window_ms=100.0,
                              router=HighestFidelityRouter(),
                              preempt_priority=None)
        mild = scheduler.register("mild", mild_model)
        aggressive = scheduler.register("aggressive", aggressive_model)
        scheduler.admission_capacity_ms = min(
            mild.batch_cost_ms(2), aggressive.batch_cost_ms(2))
        submitted = shed = 0
        for i in range(8):
            try:
                scheduler.submit(tiny_dataset.images[i])
                submitted += 1
            except AdmissionError:
                shed += 1
        assert shed > 0 and submitted >= 2
        assert scheduler.pending_requests() == submitted

    def test_pinned_model_is_shed_not_degraded(self, mild_model,
                                               aggressive_model, clock,
                                               tiny_dataset):
        """An explicit model= pin opts out of re-routing: over capacity
        it sheds even though a cheaper session has headroom."""
        scheduler = Scheduler(clock=clock, batch_window_ms=100.0,
                              preempt_priority=None)
        mild = scheduler.register("mild", mild_model)
        scheduler.register("aggressive", aggressive_model)
        scheduler.admission_capacity_ms = mild.batch_cost_ms(1)
        scheduler.submit(tiny_dataset.images[0], model="mild")
        with pytest.raises(AdmissionError):
            scheduler.submit(tiny_dataset.images[1], model="mild")


class TestFlushPreemption:
    def test_premium_arrival_flushes_inline(self, mild_model, clock,
                                            tiny_dataset):
        """A class-0 request with a deadline tighter than the batch
        cost executes AT SUBMIT TIME -- no step() call in sight."""
        scheduler = Scheduler(clock=clock, batch_window_ms=50.0)
        scheduler.register("default", mild_model)
        for i in range(3):
            scheduler.submit(tiny_dataset.images[i])     # best effort
        clock.advance(10.0)                              # mid-window
        request_id = scheduler.submit(tiny_dataset.images[3],
                                      deadline_ms=0.001, priority=0)
        result = scheduler.pop_result(request_id)        # already done
        assert result is not None
        assert result.completed_ms == 10.0
        assert result.overshoot_ms <= 0.001
        assert scheduler.events[-1].reason == "deadline"
        # The due flush took the whole pending prefix with it.
        assert scheduler.pending_requests() == 0

    def test_lateness_bounded_by_margin_not_window(self, mild_model,
                                                   clock, tiny_dataset):
        """The satellite's acceptance: with preemption, a tier-0
        arrival mid-window completes within deadline + margin; without
        it, the same trace waits out the batch window (lateness ~ one
        window).  Nothing calls step() between arrival and the window
        expiry, exactly the gap preemption closes."""
        margin = 0.1
        outcomes = {}
        for preempt in (0, None):
            vclock = VirtualClock()
            scheduler = Scheduler(clock=vclock, batch_window_ms=50.0,
                                  deadline_margin_ms=margin,
                                  preempt_priority=preempt)
            scheduler.register("default", mild_model)
            for i in range(3):
                scheduler.submit(tiny_dataset.images[i])
            vclock.advance(10.0)
            request_id = scheduler.submit(tiny_dataset.images[3],
                                          deadline_ms=0.001, priority=0)
            result = scheduler.pop_result(request_id)
            if result is None:
                # No preemption: the next flush opportunity is the
                # window expiry, one full window after the backlog
                # arrived.
                vclock.advance(40.0)                     # t = 50
                scheduler.step()
                result = scheduler.pop_result(request_id)
            outcomes[preempt] = result
        preempted, lazy = outcomes[0], outcomes[None]
        assert preempted is not None and lazy is not None
        deadline = 10.0 + 0.001
        assert preempted.completed_ms - deadline <= margin
        assert lazy.completed_ms - deadline >= 39.0      # ~ the window
        assert lazy.completed_ms - deadline > scheduler.batch_window_ms / 2

    def test_default_priority_does_not_preempt(self, mild_model, clock,
                                               tiny_dataset):
        """Plain traffic keeps the step-driven cadence: nothing
        executes inside submit() for the default class even when a
        flush is due."""
        scheduler = Scheduler(clock=clock, batch_window_ms=5.0)
        scheduler.register("default", mild_model)
        scheduler.submit(tiny_dataset.images[0])
        clock.advance(20.0)                      # window long expired
        scheduler.submit(tiny_dataset.images[1])  # default class
        assert scheduler.pending_requests() == 2  # still queued
        assert scheduler.step() != []

    def test_preempt_threshold_is_configurable(self, mild_model, clock,
                                               tiny_dataset):
        scheduler = Scheduler(clock=clock, batch_window_ms=50.0,
                              preempt_priority=2)
        scheduler.register("default", mild_model)
        request_id = scheduler.submit(tiny_dataset.images[0],
                                      deadline_ms=0.001, priority=2)
        assert scheduler.pop_result(request_id) is not None


class TestTwoTierOverload:
    def test_premium_hit_rate_under_admission_controlled_overload(
            self, mild_model, aggressive_model, clock):
        """The standing acceptance bar, virtual-clock deterministic:
        bulk bursts overflow the priced capacity, admission degrades
        then sheds class 1, and class 0 still hits >= 95% of its
        deadlines (here: all of them)."""
        scheduler = Scheduler(clock=clock, batch_window_ms=4.0,
                              router=HighestFidelityRouter(),
                              priority_tiers={0: 2.0, 1: 20.0})
        mild = scheduler.register("mild", mild_model)
        scheduler.register("aggressive", aggressive_model)
        scheduler.admission_capacity_ms = mild.batch_cost_ms(6)
        trace = two_tier_trace(duration_ms=60.0, premium_period_ms=3.0,
                               bulk_burst_size=16, bulk_burst_period_ms=8.0,
                               seed=5)
        arrivals = two_tier_arrivals((3, 16, 16), duration_ms=60.0,
                                     premium_period_ms=3.0,
                                     bulk_burst_size=16,
                                     bulk_burst_period_ms=8.0, seed=5)
        assert len(arrivals) == len(trace)
        sim = ServingSimulation(scheduler, clock, arrivals, tick_ms=1.0)
        report = sim.run()
        # Overload really happened and was admission-controlled.
        stats = scheduler.stats()
        assert len(report.shed) > 0
        assert stats["classes"][1]["shed"] == len(report.shed)
        assert stats["classes"][1]["degraded"] > 0
        # Premium never pays for it.
        assert report.hit_rate(priority=0) >= 0.95
        premium = [r for r in report.results.values() if r.priority == 0]
        assert len(premium) == 20                  # none shed
        assert report.hit_rate(priority=0) == 1.0
        # Degraded bulk really ran on the cheaper operating point.
        bulk_sessions = {r.session for r in report.results.values()
                         if r.priority == 1}
        assert "aggressive" in bulk_sessions