"""Replayable trace format: JSONL round-trip, deterministic payloads,
generator shapes, and the load-generator replay loop (driven by a fake
clock -- no real sleeping)."""

import json

import numpy as np
import pytest

from repro.serving import (DEFAULT_PRIORITY, TraceRequest,
                           adversarial_trace, bursty_trace, load_jsonl,
                           replay, save_jsonl, synth_images,
                           two_tier_trace, uniform_trace)


class TestJsonlRoundTrip:
    def test_round_trip_preserves_every_field(self, tmp_path):
        trace = [TraceRequest(at_ms=3.0, num_images=2, seed=7,
                              deadline_ms=9.5, priority=0, model="mild"),
                 TraceRequest(at_ms=1.0)]
        path = tmp_path / "trace.jsonl"
        save_jsonl(trace, path)
        loaded = load_jsonl(path)
        assert [r.at_ms for r in loaded] == [1.0, 3.0]  # sorted on load
        rich = loaded[1]
        assert (rich.num_images, rich.seed, rich.deadline_ms,
                rich.priority, rich.model) == (2, 7, 9.5, 0, "mild")
        plain = loaded[0]
        assert plain.deadline_ms is None and plain.model is None
        assert plain.priority == DEFAULT_PRIORITY

    def test_none_fields_are_omitted_on_the_wire(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_jsonl([TraceRequest(at_ms=0.0)], path)
        record = json.loads(path.read_text().strip())
        assert "deadline_ms" not in record and "model" not in record

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"at_ms": 2.0}\n\n{"at_ms": 1.0}\n')
        assert [r.at_ms for r in load_jsonl(path)] == [1.0, 2.0]


class TestSynthImages:
    def test_deterministic_by_seed(self):
        first = synth_images((2, 3, 8, 8), seed=5)
        again = synth_images((2, 3, 8, 8), seed=5)
        other = synth_images((2, 3, 8, 8), seed=6)
        np.testing.assert_array_equal(first, again)
        assert not np.array_equal(first, other)
        assert first.shape == (2, 3, 8, 8) and first.dtype == np.float64

    def test_trace_request_images(self):
        request = TraceRequest(at_ms=0.0, num_images=3, seed=11)
        images = request.images((3, 8, 8))
        np.testing.assert_array_equal(images,
                                      synth_images((3, 3, 8, 8), 11))


class TestGenerators:
    def test_uniform(self):
        trace = uniform_trace(num_requests=4, period_ms=2.5, seed=10)
        assert [r.at_ms for r in trace] == [0.0, 2.5, 5.0, 7.5]
        assert len({r.seed for r in trace}) == 4   # distinct payloads

    def test_bursty(self):
        trace = bursty_trace(burst_times_ms=[0.0, 10.0], burst_size=3)
        assert [r.at_ms for r in trace] == [0.0] * 3 + [10.0] * 3
        assert len({r.seed for r in trace}) == 6

    def test_adversarial_premium_lands_mid_window(self):
        trace = adversarial_trace(window_ms=8.0, num_windows=2,
                                  backlog_size=3)
        premium = [r for r in trace if r.priority == 0]
        backlog = [r for r in trace if r.priority == DEFAULT_PRIORITY]
        assert len(premium) == 2 and len(backlog) == 6
        for request in premium:
            assert request.deadline_ms == 1.0          # window / 8
            assert request.at_ms % 16.0 == 4.0         # mid-window
        assert all(r.deadline_ms is None for r in backlog)

    def test_two_tier_mix_and_order(self):
        trace = two_tier_trace(duration_ms=30.0, premium_period_ms=10.0,
                               bulk_burst_size=4, bulk_burst_period_ms=15.0)
        assert [r.at_ms for r in trace] == sorted(r.at_ms for r in trace)
        assert sum(r.priority == 0 for r in trace) == 3
        assert sum(r.priority == 1 for r in trace) == 8
        seeds = [r.seed for r in trace]
        assert len(set(seeds)) == len(seeds)


class TestReplay:
    def test_paces_submissions_on_the_clock(self):
        trace = uniform_trace(num_requests=3, period_ms=100.0)
        now = [0.0]
        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            now[0] += seconds

        submitted_at = []

        def submit(request):
            submitted_at.append(now[0])
            return request.seed

        outcomes = replay(trace, submit, sleep=fake_sleep,
                          clock=lambda: now[0])
        assert submitted_at == [0.0, 0.1, 0.2]      # seconds
        assert [value for _, value in outcomes] == [r.seed for r in trace]

    def test_speed_compresses_the_trace(self):
        trace = uniform_trace(num_requests=2, period_ms=100.0)
        now = [0.0]

        def fake_sleep(seconds):
            now[0] += seconds

        replay(trace, lambda r: None, speed=4.0, sleep=fake_sleep,
               clock=lambda: now[0])
        assert now[0] == pytest.approx(0.025)       # 100 ms / 4

    def test_exceptions_become_outcomes(self):
        trace = uniform_trace(num_requests=3, period_ms=0.0)
        boom = RuntimeError("shed")

        def submit(request):
            if request.seed == 1:
                raise boom
            return "ok"

        outcomes = replay(trace, submit, sleep=lambda s: None,
                          clock=lambda: 0.0)
        assert [value for _, value in outcomes] == ["ok", boom, "ok"]

    def test_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            replay([], lambda r: None, speed=0.0)