"""End-to-end parity: the scheduler is an execution detail.

Whatever the arrival order, batch window, routing decision, or
remainder carry-over, every request's logits must match the reference
per-image ``HeatViT.forward_pruned`` to the engine's 1e-8 parity bound
-- and carried-over remainders must match a fresh submission of the
same images *bitwise* (acceptance criterion b): batching neighbours
and padded buckets provably do not perturb a request's rows.
"""

import numpy as np
import pytest

from repro.core import HeatViT, LatencySparsityTable
from repro.engine import BucketingPolicy, InferenceSession
from repro.serving import Scheduler, VirtualClock

from tests.serving.harness import Arrival, ServingSimulation

TOLERANCE = 1e-8


@pytest.fixture()
def model(tiny_backbone):
    model = HeatViT(tiny_backbone, {1: 0.6, 3: 0.4},
                    rng=np.random.default_rng(42))
    model.eval()
    return model


REQUEST_SLICES = [(0, 3), (3, 4), (4, 9), (9, 10), (10, 16), (16, 24)]


def run_trace(model, images, order, batch_window_ms, multi_model=False,
              spacing_ms=1.0):
    """Run the sliced requests through a simulated scheduler; returns
    ``{(lo, hi): RequestResult}``."""
    clock = VirtualClock()
    scheduler = Scheduler(clock=clock, batch_window_ms=batch_window_ms)
    if multi_model:
        # The SAME model at two serving configurations; skewed tables
        # steer the router, which must not affect logits.
        scheduler.register("fast", session=InferenceSession(
            model, batch_size=4,
            latency_table=LatencySparsityTable({0.5: 1.0, 1.0: 1.0})))
        scheduler.register("slow", session=InferenceSession(
            model, batch_size=32, policy=BucketingPolicy(allow_padding=False),
            latency_table=LatencySparsityTable({0.5: 9.0, 1.0: 9.0})))
    else:
        scheduler.register("only", model)
    slices = [REQUEST_SLICES[i] for i in order]
    arrivals = []
    for position, (lo, hi) in enumerate(slices):
        model_pin = None
        if multi_model and position % 2:
            model_pin = "slow"                 # force both sessions used
        arrivals.append(Arrival(at_ms=position * spacing_ms,
                                images=images[lo:hi], model=model_pin))
    report = ServingSimulation(scheduler, clock, arrivals).run()
    assert sorted(report.results) == list(range(len(slices)))
    return {slices[rid]: report.results[rid] for rid in report.results}


class TestSchedulerParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("batch_window_ms", [1.0, 5.0, 20.0])
    def test_any_arrival_order_and_window(self, model, tiny_dataset,
                                          seed, batch_window_ms):
        images = tiny_dataset.images[:24]
        ref = model.forward_pruned(images).data
        order = np.random.default_rng(seed).permutation(
            len(REQUEST_SLICES))
        outcome = run_trace(model, images, order, batch_window_ms)
        for (lo, hi), result in outcome.items():
            np.testing.assert_allclose(result.logits, ref[lo:hi],
                                       rtol=0, atol=TOLERANCE)

    def test_multi_model_routing_same_logits(self, model, tiny_dataset):
        images = tiny_dataset.images[:24]
        ref = model.forward_pruned(images).data
        outcome = run_trace(model, images, range(len(REQUEST_SLICES)),
                            batch_window_ms=3.0, multi_model=True)
        sessions = {result.session for result in outcome.values()}
        assert sessions == {"fast", "slow"}       # both really served
        for (lo, hi), result in outcome.items():
            np.testing.assert_allclose(result.logits, ref[lo:hi],
                                       rtol=0, atol=TOLERANCE)


class TestCarryBitwiseParity:
    """Acceptance (b): the carry machinery adds NO numerical effect.

    Executing a carried-over remainder merged with the next burst (the
    scheduler's grouped ``submit_many`` path, per-request slicing and
    all) must be bitwise-identical to a fresh flat ``submit`` of the
    same flush batch.  (Parity across *different* batch compositions is
    the engine's separate 1e-8 contract -- BLAS kernel blocking is not
    bitwise-stable across matrix shapes -- and is covered above.)
    """

    def test_carried_remainder_matches_fresh_submission(self, model,
                                                        tiny_dataset):
        images = tiny_dataset.images
        clock = VirtualClock()
        scheduler = Scheduler(clock=clock, batch_window_ms=10.0)
        scheduler.register("only", model, max_batch=4)
        first_burst = [scheduler.submit(images[i]) for i in range(9)]
        scheduler.step()                  # two capacity flushes, 1 carried
        assert scheduler.pending_requests() == 1
        carried_id = first_burst[-1]
        clock.advance(2.0)
        second_burst = [scheduler.submit(images[i]) for i in range(9, 12)]
        results = {r.request_id: r for r in scheduler.step()}
        # The carried request ran merged into the second burst's batch.
        merged_event = scheduler.events[-1]
        assert merged_event.reason == "capacity"
        assert merged_event.request_ids[0] == carried_id   # popped first
        assert set(second_burst) <= set(results)
        assert any(e.carried_requests > 0 for e in scheduler.events)
        # Bitwise: the merged carried batch == fresh flat submission of
        # the same images in flush order, on an independent session.
        fresh = InferenceSession(model, batch_size=32)
        flat = fresh.submit(np.concatenate(
            [images[rid][None] for rid in merged_event.request_ids]))
        merged = np.concatenate(
            [results[rid].logits for rid in merged_event.request_ids])
        np.testing.assert_array_equal(merged, flat.logits)
        merged_latency = np.concatenate(
            [results[rid].latency_ms for rid in merged_event.request_ids])
        np.testing.assert_array_equal(merged_latency, flat.latency_ms)

    def test_every_flush_matches_fresh_submission(self, model,
                                                  tiny_dataset):
        """Every batch the scheduler ever forms -- first-burst, carried,
        merged -- reproduces a fresh flat submission bitwise."""
        images = tiny_dataset.images[:12]
        clock = VirtualClock()
        scheduler = Scheduler(clock=clock, batch_window_ms=3.0)
        scheduler.register("only", model, max_batch=5)
        for i in range(12):
            scheduler.submit(images[i])
        collected = {}
        while len(collected) < 12:
            for result in scheduler.step():
                collected[result.request_id] = result
            clock.advance(1.0)
        assert len(scheduler.events) >= 3          # really ran split up
        fresh = InferenceSession(model, batch_size=32)
        for event in scheduler.events:
            flat = fresh.submit(np.concatenate(
                [images[rid][None] for rid in event.request_ids]))
            batch = np.concatenate(
                [collected[rid].logits for rid in event.request_ids])
            np.testing.assert_array_equal(batch, flat.logits)
