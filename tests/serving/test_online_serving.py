"""Online cost learning threaded through the serving layer.

Placement: each worker's learned (overhead + marginal * n) estimator
takes over from the calibration EWMA once confident -- and only for
shaped placements, so the legacy scalar arithmetic stays exact.
Scheduler: ``register(..., learn_cost=True)`` prices flushes, backlog,
and admission from the session's online model, in-process submissions
and worker replies both feeding it.  Learned pricing changes *when*
batches flush, never what they compute.
"""

import numpy as np
import pytest

from repro.cost import BatchPlan, OnlineCostModel
from repro.engine import InferenceSession
from repro.serving import PlacementPolicy, Scheduler
from repro.serving.clock import VirtualClock

TOLERANCE = 1e-8


class TestPlacementLearning:
    def test_shaped_completions_feed_estimator(self):
        policy = PlacementPolicy(1, min_samples=3)
        for n in (4, 8, 16):
            ticket = policy.assign(10.0, num_images=n)
            assert ticket.num_images == n
            policy.complete(ticket, now_ms=0.0, measured_ms=20.0 + n)
        learned = policy.snapshot()["learned"][0]
        assert learned["samples"] == 3
        assert learned["confident"]

    def test_scalar_placements_keep_ewma_arithmetic(self):
        """Bare-scalar assigns never consult or feed the estimators --
        the pre-learning EWMA math stays exact."""
        policy = PlacementPolicy(1, min_samples=1, smoothing=0.5)
        ticket = policy.assign(10.0)
        policy.complete(ticket, now_ms=0.0, measured_ms=20.0)
        assert policy.calibration == (2.0,)       # first obs seeds
        assert policy.snapshot()["learned"][0]["samples"] == 0
        ticket = policy.assign(10.0)
        assert ticket.predicted_ms == 20.0        # EWMA x raw
        assert ticket.num_images is None
        policy.complete(ticket, now_ms=0.0, measured_ms=40.0)
        assert policy.calibration == (0.5 * 2.0 + 0.5 * 4.0,)

    def test_learned_law_prices_shape_not_scale(self):
        """Once confident, a worker's prediction follows its own fitted
        batch law -- a per-launch overhead the EWMA scalar cannot
        express."""
        policy = PlacementPolicy(1, min_samples=4, forgetting=1.0)
        # Planted worker behavior: 12 ms per launch + 1 ms per image,
        # against a raw cost model that says 2 ms per image flat.
        for n in (2, 4, 8, 16, 8):
            ticket = policy.assign(2.0 * n, num_images=n)
            policy.complete(ticket, now_ms=0.0, measured_ms=12.0 + n)
        small = policy.predicted_ms(0, 2.0 * 2, num_images=2)
        large = policy.predicted_ms(0, 2.0 * 32, num_images=32)
        assert small == pytest.approx(14.0, rel=0.05)
        assert large == pytest.approx(44.0, rel=0.05)
        # The EWMA would have priced the small batch ~4x too low.
        ewma_small = policy.calibration[0] * 4.0
        assert abs(small - 14.0) < abs(ewma_small - 14.0)

    def test_learned_estimators_redirect_placement(self):
        """A worker whose measured batch law is cheaper wins the shaped
        assign even when the raw cost-model estimate is
        worker-agnostic."""
        policy = PlacementPolicy(2, min_samples=3, forgetting=1.0)
        # Worker 0: high per-launch overhead. Worker 1: cheap launches.
        for n in (4, 8, 16):
            policy.estimator(0).observe(n, 30.0 + n, launches=1.0)
            policy.estimator(1).observe(n, 2.0 + n, launches=1.0)
        ticket = policy.assign(5.0, num_images=4)
        assert ticket.worker == 1
        assert ticket.predicted_ms == pytest.approx(6.0, rel=0.05)
        policy.complete(ticket, now_ms=10.0, measured_ms=6.0)
        # A bare scalar assign ignores the learned laws entirely.
        scalar = policy.assign(5.0, now_ms=10.0)
        assert scalar.worker == 0
        assert scalar.predicted_ms == 5.0


@pytest.fixture()
def images(rng):
    return rng.normal(size=(30, 2, 3, 16, 16))


def run_traffic(scheduler, images, clock):
    ids, results = [], {}
    for stack in images:
        ids.append(scheduler.submit(stack))
        clock.advance(6.0)
        for result in scheduler.step():
            results[result.request_id] = result
    for result in scheduler.drain():
        results[result.request_id] = result
    return ids, results


class TestSchedulerLearning:
    def test_register_learn_cost_builds_online_session(self, mild_model):
        scheduler = Scheduler(clock=VirtualClock())
        served = scheduler.register("m", mild_model, batch_size=8,
                                    learn_cost=True)
        assert served.session.learns_cost
        assert isinstance(served.cost_model, OnlineCostModel)

    def test_ready_static_session_rejected(self, mild_model):
        scheduler = Scheduler(clock=VirtualClock())
        session = InferenceSession(mild_model, batch_size=8)
        with pytest.raises(ValueError, match="learn_cost"):
            scheduler.register("m", session=session, learn_cost=True)

    def test_ready_learning_session_accepted(self, mild_model):
        scheduler = Scheduler(clock=VirtualClock())
        session = InferenceSession(mild_model, batch_size=8,
                                   learn_cost=True)
        served = scheduler.register("m", session=session, learn_cost=True)
        assert served.session is session

    def test_in_process_flushes_feed_and_reprice(self, mild_model,
                                                 images):
        clock = VirtualClock()
        scheduler = Scheduler(clock=clock, batch_window_ms=5.0)
        served = scheduler.register("m", mild_model, batch_size=8,
                                    learn_cost=True)
        static_ms = served.cost_model.prior.estimate(BatchPlan(
            num_images=8, per_image_ms=served.marginal_image_ms,
            num_batches=1)).total_ms
        ids, results = run_traffic(scheduler, images, clock)
        assert sorted(results) == sorted(ids)
        batch_samples, bucket_samples = served.cost_model.samples()
        assert batch_samples >= len(images)
        assert bucket_samples > 0
        assert served.cost_model.confident()
        # Backlog/flush pricing now answers from the learned law.
        learned_ms = served.batch_cost_ms(8)
        assert learned_ms != static_ms
        assert served.projected_backlog_ms(8) == pytest.approx(learned_ms)

    def test_learning_identical_results(self, mild_model, images):
        clock = VirtualClock()
        learning = Scheduler(clock=clock, batch_window_ms=5.0)
        learning.register("m", mild_model, batch_size=8, learn_cost=True)
        ids, results = run_traffic(learning, images, clock)
        reference = InferenceSession(mild_model, batch_size=8)
        for request_id, stack in zip(ids, images):
            want = reference.submit(stack)
            got = results[request_id]
            np.testing.assert_allclose(got.logits, want.logits,
                                       rtol=0, atol=TOLERANCE)
            for stage_got, stage_want in zip(got.tokens_per_stage,
                                             want.tokens_per_stage):
                np.testing.assert_array_equal(stage_got, stage_want)


class TestPooledLearning:
    @pytest.fixture(scope="class")
    def pooled(self, request):
        """A 2-worker learn_cost scheduler (fork: instant startup)."""
        import numpy as np

        from repro.core import HeatViT
        from repro.vit import VisionTransformer, ViTConfig

        config = ViTConfig(name="pool-tiny", image_size=16, patch_size=4,
                           embed_dim=24, depth=4, num_heads=3,
                           num_classes=4)
        backbone = VisionTransformer(config, rng=np.random.default_rng(7))
        model = HeatViT(backbone, {1: 0.6, 2: 0.6},
                        rng=np.random.default_rng(1))
        model.eval()
        clock = VirtualClock()
        scheduler = Scheduler(clock=clock, batch_window_ms=5.0)
        served = scheduler.register("m", model, batch_size=8,
                                    backend="fastpath", dtype="float64",
                                    workers=2, worker_ctx="fork",
                                    learn_cost=True)
        request.addfinalizer(scheduler.shutdown)
        return scheduler, served, clock, model

    def test_replies_feed_parent_model_and_placement(self, pooled, rng):
        scheduler, served, clock, model = pooled
        images = rng.normal(size=(24, 2, 3, 16, 16))
        ids, results = run_traffic(scheduler, images, clock)
        assert sorted(results) == sorted(ids)
        # Every worker reply's (shape, wall) fed the parent's model...
        # (replies, not requests: the in-flight bound may coalesce
        # deferred flushes into fewer, larger batches)
        batch_samples, _ = served.cost_model.samples()
        assert batch_samples > 0
        assert served.cost_model.confident()
        # ...and the per-worker placement estimators, one sample each.
        learned = served.placement.snapshot()["learned"]
        assert sum(entry["samples"] for entry in learned) == batch_samples
        # Execution semantics unchanged: same keep decisions and
        # engine-tolerance logits as a static in-process session.
        reference = InferenceSession(model, batch_size=8,
                                     backend="fastpath", dtype="float64")
        for request_id, stack in zip(ids, images):
            want = reference.submit(stack)
            got = results[request_id]
            np.testing.assert_allclose(got.logits, want.logits,
                                       rtol=0, atol=TOLERANCE)
            for stage_got, stage_want in zip(got.tokens_per_stage,
                                             want.tokens_per_stage):
                np.testing.assert_array_equal(stage_got, stage_want)
