"""Multi-model routing: the cost policy over per-session latency tables.

Sessions get hand-built latency tables with a wide, unambiguous gap
(40 ms/image vs 5 ms/image) so every routing decision is checkable
against the tables by hand: the default router must pick the session
minimizing table-estimated latency subject to the deadline, the
fidelity router the *least pruned* session that still meets it.
"""

import numpy as np
import pytest

from repro.core import LatencySparsityTable
from repro.engine import InferenceSession
from repro.serving import (HighestFidelityRouter, LeastLatencyRouter,
                           Scheduler, VirtualClock, backend_fidelity,
                           request_cost_ms)

# Flat tables make the per-image estimate independent of keep ratios:
# mild costs exactly 10 ms per block (40 ms/image on the 4-block tiny
# model), aggressive 1.25 ms per block (5 ms/image).
MILD_TABLE = LatencySparsityTable({0.5: 10.0, 1.0: 10.0})
FAST_TABLE = LatencySparsityTable({0.5: 1.25, 1.0: 1.25})


@pytest.fixture()
def scheduler(mild_model, aggressive_model, clock_and_router):
    clock, router = clock_and_router
    scheduler = Scheduler(clock=clock, router=router, batch_window_ms=5.0)
    scheduler.register("mild", session=InferenceSession(
        mild_model, batch_size=32, latency_table=MILD_TABLE))
    scheduler.register("aggressive", session=InferenceSession(
        aggressive_model, batch_size=32, latency_table=FAST_TABLE))
    return scheduler


def routed_session(scheduler, images, **submit_kwargs):
    request_id = scheduler.submit(images, **submit_kwargs)
    for served in scheduler.sessions:
        if any(r.request_id == request_id for r in served.queue.snapshot()):
            return served.name
    raise AssertionError("request vanished")


class TestLeastLatencyRouter:
    @pytest.fixture()
    def clock_and_router(self):
        return VirtualClock(), LeastLatencyRouter()

    def test_estimates_come_from_tables(self, scheduler):
        by_name = {s.name: s for s in scheduler.sessions}
        assert by_name["mild"].marginal_image_ms == pytest.approx(40.0)
        assert by_name["aggressive"].marginal_image_ms == pytest.approx(5.0)
        # Bare latency tables wrap as ZERO-overhead cost models, so the
        # batch price is exactly the legacy per-image sum.
        assert by_name["mild"].cost_model.is_zero_overhead
        assert by_name["mild"].batch_cost_ms(3) == pytest.approx(120.0)

    def test_best_effort_picks_global_minimum(self, scheduler,
                                              tiny_dataset):
        assert routed_session(scheduler,
                              tiny_dataset.images[0]) == "aggressive"

    def test_minimizes_latency_subject_to_deadline(self, scheduler,
                                                   tiny_dataset):
        """Acceptance (c): argmin of the table estimates over the
        feasible set, checked against a hand computation."""
        candidates = scheduler.sessions
        for num_images, deadline in [(1, 100.0), (2, 11.0), (4, 30.0)]:
            request_id = scheduler.submit(tiny_dataset.images[:num_images],
                                          deadline_ms=deadline)
            request = next(
                r for s in candidates for r in s.queue.snapshot()
                if r.request_id == request_id)
            feasible = [s for s in candidates
                        if request_cost_ms(s, request) <= deadline]
            expected = min(feasible,
                           key=lambda s: request_cost_ms(s, request))
            chosen = next(s for s in candidates
                          if request in s.queue.snapshot())
            assert chosen.name == expected.name == "aggressive"

    def test_infeasible_deadline_falls_back_to_fastest(self, scheduler,
                                                       tiny_dataset):
        # 4 images * 5 ms = 20 ms > 2 ms: nothing is feasible.
        assert routed_session(scheduler, tiny_dataset.images[:4],
                              deadline_ms=2.0) == "aggressive"

    def test_explicit_model_overrides_router(self, scheduler,
                                             tiny_dataset):
        assert routed_session(scheduler, tiny_dataset.images[0],
                              model="mild") == "mild"

    def test_results_report_routing_decision(self, scheduler,
                                             tiny_dataset):
        scheduler.submit(tiny_dataset.images[0])
        scheduler.submit(tiny_dataset.images[1], model="mild")
        results = {r.request_id: r.session for r in scheduler.flush()}
        assert results == {0: "aggressive", 1: "mild"}


class TestHighestFidelityRouter:
    @pytest.fixture()
    def clock_and_router(self):
        return VirtualClock(), HighestFidelityRouter()

    def test_loose_deadline_gets_least_pruned(self, scheduler,
                                              tiny_dataset):
        # 40 ms <= 100 ms: the accurate operating point fits.
        assert routed_session(scheduler, tiny_dataset.images[0],
                              deadline_ms=100.0) == "mild"

    def test_tight_deadline_degrades_to_pruned(self, scheduler,
                                               tiny_dataset):
        # 5 ms <= 20 ms < 40 ms: only the aggressive point fits.
        assert routed_session(scheduler, tiny_dataset.images[0],
                              deadline_ms=20.0) == "aggressive"

    def test_impossible_deadline_falls_back_to_fastest(self, scheduler,
                                                       tiny_dataset):
        assert routed_session(scheduler, tiny_dataset.images[0],
                              deadline_ms=1.0) == "aggressive"

    def test_best_effort_gets_least_pruned(self, scheduler, tiny_dataset):
        assert routed_session(scheduler,
                              tiny_dataset.images[0]) == "mild"

    def test_per_session_queues_flush_independently(self, scheduler,
                                                    tiny_dataset):
        clock = scheduler.clock
        scheduler.submit(tiny_dataset.images[0], deadline_ms=100.0)  # mild
        scheduler.submit(tiny_dataset.images[1], deadline_ms=20.0)   # aggr
        clock.advance(5.0)                          # both windows expire
        results = scheduler.step()
        sessions = {r.request_id: r.session for r in results}
        assert sessions == {0: "mild", 1: "aggressive"}
        assert {e.session for e in scheduler.events} == {"mild",
                                                         "aggressive"}


class TestBackendFidelity:
    """Numerics-grade pricing: with mixed float/quantized replicas of
    the same operating point the cost estimates tie (the latency table
    prices token counts, not arithmetic), so the fidelity router must
    break the tie toward the higher numerics grade."""

    def test_grade_ordering(self):
        grades = [backend_fidelity("tensor", np.float64),
                  backend_fidelity("fastpath", np.float64),
                  backend_fidelity("fastpath", np.float32),
                  backend_fidelity("int16", np.float64),
                  backend_fidelity("int8", np.float64),
                  backend_fidelity("int8", np.float32)]
        assert grades == sorted(grades, reverse=True)
        assert len(set(grades)) == len(grades)

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="int4"):
            backend_fidelity("int4")

    def test_served_model_exposes_fidelity(self, mild_model):
        scheduler = Scheduler(clock=VirtualClock())
        served = scheduler.register("q", session=InferenceSession(
            mild_model, batch_size=32, latency_table=MILD_TABLE,
            backend="int8"))
        assert served.fidelity == backend_fidelity("int8", np.float32)

    def test_cost_tie_breaks_to_float_replica(self, mild_model,
                                              tiny_dataset):
        scheduler = Scheduler(clock=VirtualClock(),
                              router=HighestFidelityRouter(),
                              batch_window_ms=5.0)
        # Same checkpoint, same latency table -- identical cost.  The
        # quantized replica sorts after "float" only by name, so a pure
        # (cost, name) max would pick it; fidelity must win instead.
        scheduler.register("float", session=InferenceSession(
            mild_model, batch_size=32, latency_table=MILD_TABLE,
            backend="fastpath"))
        scheduler.register("quantized", session=InferenceSession(
            mild_model, batch_size=32, latency_table=MILD_TABLE,
            backend="int8"))
        assert routed_session(scheduler, tiny_dataset.images[0],
                              deadline_ms=100.0) == "float"
