"""PlacementPolicy unit suite: virtual-clock, no processes.

The policy is a pure function of the times it is handed, so every
decision here is asserted exactly: which worker wins, what completion
time was predicted, and how online calibration reshapes both.
"""

import numpy as np
import pytest

from repro.core.latency import LatencySparsityTable
from repro.cost import CostModel
from repro.serving import PlacementPolicy
from repro.serving.clock import VirtualClock


def make_cost_model(batch_overhead_ms=2.0):
    table = LatencySparsityTable({1.0: 1.0, 0.5: 0.5})
    return CostModel(table, num_patches=16,
                     batch_overhead_ms=batch_overhead_ms)


class TestAssign:
    def test_idle_workers_fill_lowest_index_first(self):
        policy = PlacementPolicy(3)
        assert policy.assign(10.0).worker == 0
        assert policy.assign(10.0).worker == 1
        assert policy.assign(10.0).worker == 2

    def test_least_loaded_worker_wins(self):
        policy = PlacementPolicy(2)
        policy.assign(30.0)               # worker 0 busy until t=30
        policy.assign(10.0)               # worker 1 busy until t=10
        ticket = policy.assign(5.0)       # 1 finishes first
        assert ticket.worker == 1
        assert ticket.start_ms == 10.0
        assert ticket.completion_ms == 15.0

    def test_backlog_is_bounded_below_by_now(self):
        policy = PlacementPolicy(1)
        clock = VirtualClock()
        policy.assign(10.0, now_ms=clock.now())
        clock.advance(100.0)              # worker went idle long ago
        ticket = policy.assign(10.0, now_ms=clock.now())
        assert ticket.start_ms == 100.0
        assert ticket.completion_ms == 110.0

    def test_in_flight_counts(self):
        policy = PlacementPolicy(2)
        a = policy.assign(10.0)
        b = policy.assign(10.0)
        assert policy.in_flight == (1, 1)
        policy.complete(a)
        assert policy.in_flight == (0, 1)
        policy.complete(b)
        assert policy.in_flight == (0, 0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            PlacementPolicy(1).assign(-1.0)

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            PlacementPolicy(0)
        with pytest.raises(ValueError):
            PlacementPolicy(1, smoothing=0.0)


class TestCalibration:
    def test_first_observation_seeds_the_factor(self):
        policy = PlacementPolicy(1)
        ticket = policy.assign(10.0, now_ms=0.0)
        policy.complete(ticket, now_ms=20.0, measured_ms=20.0)
        assert policy.calibration == (2.0,)
        assert policy.observations == (1,)

    def test_ewma_moves_toward_new_ratio(self):
        policy = PlacementPolicy(1, smoothing=0.5)
        first = policy.assign(10.0, now_ms=0.0)
        policy.complete(first, now_ms=10.0, measured_ms=10.0)   # ratio 1
        second = policy.assign(10.0, now_ms=10.0)
        policy.complete(second, now_ms=40.0, measured_ms=30.0)  # ratio 3
        assert policy.calibration == (2.0,)       # 0.5*1 + 0.5*3

    def test_calibration_redirects_placement(self):
        """A worker measured 3x slower stops winning ties: the policy
        routes toward measured speed, not the static model."""
        policy = PlacementPolicy(2)
        slow = policy.assign(10.0, now_ms=0.0)    # worker 0
        fast = policy.assign(10.0, now_ms=0.0)    # worker 1
        policy.complete(slow, now_ms=30.0, measured_ms=30.0)
        policy.complete(fast, now_ms=10.0, measured_ms=10.0)
        ticket = policy.assign(10.0, now_ms=50.0)
        assert ticket.worker == 1                 # calibrated 1x vs 3x
        assert ticket.predicted_ms == 10.0
        assert policy.predicted_ms(0, 10.0) == 30.0

    def test_unmeasured_completion_leaves_calibration_alone(self):
        policy = PlacementPolicy(1)
        policy.complete(policy.assign(10.0))
        assert policy.calibration == (1.0,)
        assert policy.observations == (0,)

    def test_zero_raw_cost_skips_calibration(self):
        policy = PlacementPolicy(1)
        policy.complete(policy.assign(0.0), measured_ms=5.0)
        assert policy.calibration == (1.0,)


class TestCompletionBookkeeping:
    def test_drained_worker_backlog_collapses_to_now(self):
        policy = PlacementPolicy(1)
        ticket = policy.assign(100.0, now_ms=0.0)
        policy.complete(ticket, now_ms=5.0, measured_ms=5.0)
        follow_up = policy.assign(10.0, now_ms=5.0)
        assert follow_up.start_ms == 5.0          # not the stale t=100

    def test_partial_drain_corrects_backlog_by_prediction_error(self):
        policy = PlacementPolicy(1)
        first = policy.assign(100.0, now_ms=0.0)  # free_at 100
        policy.assign(100.0, now_ms=0.0)          # free_at 200
        policy.complete(first, now_ms=10.0, measured_ms=10.0)
        # first finished 90 ms early; the second's completion shifts in.
        assert policy.snapshot()["free_at_ms"] == (110.0,)

    def test_over_completion_rejected(self):
        policy = PlacementPolicy(2)
        ticket = policy.assign(10.0)
        policy.complete(ticket)
        with pytest.raises(ValueError):
            policy.complete(ticket)


class TestCostModelIntegration:
    def test_completion_goes_through_cost_model(self):
        policy = PlacementPolicy(1, cost_model=make_cost_model())
        ticket = policy.assign(10.0, now_ms=0.0)
        policy.complete(ticket, now_ms=25.0, measured_ms=25.0)
        # calibration 2.5: backlog + 2.5 * raw through completion_ms
        assert policy.completion_ms(0, 4.0, now_ms=25.0) == 35.0

    def test_cost_model_completion_ms(self):
        cost_model = make_cost_model(batch_overhead_ms=2.0)
        cost = cost_model.batch_ms(4, 1.0)
        assert cost == 6.0
        assert cost_model.completion_ms(cost) == 6.0
        assert cost_model.completion_ms(cost, backlog_ms=10.0) == 16.0
        assert cost_model.completion_ms(cost, backlog_ms=10.0,
                                        calibration=2.0) == 22.0

    def test_completion_ms_accepts_batch_cost_objects(self):
        from repro.cost import BatchPlan
        cost_model = make_cost_model(batch_overhead_ms=2.0)
        batch_cost = cost_model.estimate(
            BatchPlan(num_images=4, per_image_ms=1.0))
        assert cost_model.completion_ms(batch_cost, backlog_ms=1.0) == 7.0

    def test_completion_ms_validates(self):
        cost_model = make_cost_model()
        with pytest.raises(ValueError):
            cost_model.completion_ms(1.0, backlog_ms=-1.0)
        with pytest.raises(ValueError):
            cost_model.completion_ms(1.0, calibration=-0.1)
        with pytest.raises(ValueError):
            cost_model.completion_ms(-1.0)


class TestDeterminism:
    def test_identical_histories_place_identically(self):
        costs = [12.0, 3.0, 7.0, 30.0, 1.0, 9.0]
        measured = [24.0, 3.0, 14.0, 30.0, 2.0, 9.0]

        def run():
            policy = PlacementPolicy(3)
            clock = VirtualClock()
            decisions = []
            tickets = []
            for cost, wall in zip(costs, measured):
                ticket = policy.assign(cost, now_ms=clock.now())
                tickets.append((ticket, wall))
                decisions.append(ticket.worker)
                clock.advance(2.0)
            for ticket, wall in tickets:
                policy.complete(ticket, now_ms=clock.now(),
                                measured_ms=wall)
            return decisions, policy.snapshot()

        first, second = run(), run()
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_snapshot_shape(self):
        policy = PlacementPolicy(2)
        snapshot = policy.snapshot()
        assert set(snapshot) == {"free_at_ms", "calibration",
                                 "in_flight", "observations", "learned"}
        assert np.all(np.asarray(snapshot["calibration"]) == 1.0)
        assert all(not entry["confident"] and entry["samples"] == 0
                   for entry in snapshot["learned"])
