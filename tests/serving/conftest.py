"""Shared serving-test fixtures: operating-point model pairs."""

import numpy as np
import pytest

from repro.core import HeatViT


@pytest.fixture()
def mild_model(tiny_backbone):
    """Lightly pruned operating point (higher latency, higher fidelity)."""
    model = HeatViT(tiny_backbone, {2: 0.8}, rng=np.random.default_rng(11))
    model.eval()
    return model


@pytest.fixture()
def aggressive_model(tiny_backbone):
    """Heavily pruned operating point (lower latency)."""
    model = HeatViT(tiny_backbone, {1: 0.5, 2: 0.5},
                    rng=np.random.default_rng(12))
    model.eval()
    return model
