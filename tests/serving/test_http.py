"""The HTTP front door: endpoints, error paths, and an end-to-end
two-tier replay over real sockets.

These tests run the real asyncio server on a loopback port with the
real system clock; timing assertions are therefore kept coarse
(generous deadlines, rate thresholds) while the exact-timing versions
of the same behaviors live under the virtual clock in
``test_admission.py``.
"""

import threading

import numpy as np
import pytest

from repro.serving import (FrontDoor, FrontDoorClient, HighestFidelityRouter,
                           Scheduler, replay, two_tier_trace)


@pytest.fixture()
def front_door(mild_model):
    scheduler = Scheduler(batch_window_ms=5.0)
    scheduler.register("default", mild_model)
    door = FrontDoor(scheduler, poll_ms=0.5)
    with door:
        with FrontDoorClient("127.0.0.1", door.port) as client:
            yield door, client


class TestEndpoints:
    def test_healthz(self, front_door):
        _, client = front_door
        status, payload = client.healthz()
        assert status == 200
        assert payload == {"status": "ok", "sessions": ["default"]}

    def test_submit_then_poll(self, front_door, tiny_dataset):
        _, client = front_door
        status, payload = client.submit(tiny_dataset.images[:2])
        assert status == 200
        assert payload["status"] == "queued"
        request_id = payload["request_id"]
        status, result = client.result(request_id, wait=True,
                                       timeout_ms=10_000)
        assert status == 200
        assert result["status"] == "done"
        assert result["request_id"] == request_id
        assert result["session"] == "default"
        assert result["num_images"] == 2
        assert len(result["predictions"]) == 2
        assert len(result["latency_ms"]) == 2
        assert result["completed_ms"] >= result["arrival_ms"]
        assert "logits" not in result

    def test_result_is_delivered_at_most_once(self, front_door,
                                              tiny_dataset):
        _, client = front_door
        _, payload = client.submit(tiny_dataset.images[:1])
        request_id = payload["request_id"]
        status, _ = client.result(request_id, wait=True, timeout_ms=10_000)
        assert status == 200
        status, payload = client.result(request_id)
        assert status == 404
        assert payload["gone"] is True

    def test_wait_timeout_reports_pending(self, front_door, mild_model,
                                          tiny_dataset):
        door, client = front_door
        # A request that cannot complete within the wait: submit against
        # a paused scheduler by stopping the stepping thread first.
        door.scheduler.stop(drain=True)
        _, payload = client.submit(tiny_dataset.images[:1])
        request_id = payload["request_id"]
        status, pending = client.result(request_id, wait=True,
                                        timeout_ms=50)
        assert status == 202
        assert pending == {"status": "pending", "request_id": request_id}
        # Non-wait poll agrees.
        status, pending = client.result(request_id)
        assert status == 202
        door.scheduler.start(poll_ms=0.5)
        door._started_scheduler = True      # let teardown stop it again
        status, result = client.result(request_id, wait=True,
                                       timeout_ms=10_000)
        assert status == 200 and result["status"] == "done"

    def test_seed_submission_is_deterministic(self, front_door):
        """`{"num_images", "seed"}` synthesizes the same pixels every
        time (the replayable-trace contract): identical seeds produce
        bit-identical logits across submissions, different seeds don't."""
        _, client = front_door
        logits = []
        for seed in (123, 123, 124):
            _, payload = client.submit(num_images=2, seed=seed)
            status, result = client.result(payload["request_id"],
                                           wait=True, timeout_ms=10_000,
                                           logits=True)
            assert status == 200
            logits.append(np.asarray(result["logits"]))
        np.testing.assert_array_equal(logits[0], logits[1])
        assert not np.array_equal(logits[0], logits[2])

    def test_stats_shape(self, front_door, tiny_dataset):
        _, client = front_door
        _, payload = client.submit(tiny_dataset.images[:1], priority=0)
        client.result(payload["request_id"], wait=True, timeout_ms=10_000)
        status, stats = client.stats()
        assert status == 200
        session = stats["sessions"]["default"]
        for key in ("queued_requests", "queued_images",
                    "priced_backlog_ms", "in_flight_batches", "backend",
                    "fidelity", "workers"):
            assert key in session
        assert stats["classes"]["0"]["submitted"] == 1
        assert stats["classes"]["0"]["completed"] == 1
        assert stats["server"]["submitted"] == 1
        assert stats["server"]["results_delivered"] == 1
        assert stats["server"]["http_requests"] >= 3


class TestErrorPaths:
    def test_unknown_route_and_methods(self, front_door):
        _, client = front_door
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("GET", "/v1/submit")[0] == 405
        assert client.request("POST", "/v1/result/0")[0] == 405

    def test_malformed_submit_bodies(self, front_door):
        _, client = front_door
        status, payload = client.request("POST", "/v1/submit", body={})
        assert (status, payload["status"]) == (400, "error")
        assert client.request("POST", "/v1/submit",
                              body={"images": "nope"})[0] == 400
        assert client.request("POST", "/v1/submit",
                              body={"num_images": 0})[0] == 400
        assert client.request("POST", "/v1/submit",
                              body={"num_images": 1,
                                    "model": "missing"})[0] == 404
        assert client.request("POST", "/v1/submit",
                              body={"num_images": 1,
                                    "priority": -3})[0] == 400

    def test_bad_result_ids(self, front_door):
        _, client = front_door
        assert client.request("GET", "/v1/result/abc")[0] == 400
        assert client.request("GET", "/v1/result/999")[0] == 404

    def test_wrong_shape_images_rejected(self, front_door):
        _, client = front_door
        status, payload = client.submit(np.zeros((1, 2, 4, 4)))
        assert status == 400

    def test_oversized_body_rejected(self, mild_model):
        scheduler = Scheduler(batch_window_ms=5.0)
        scheduler.register("default", mild_model)
        with FrontDoor(scheduler, max_body_bytes=256) as door:
            with FrontDoorClient("127.0.0.1", door.port) as client:
                status, payload = client.submit(np.zeros((1, 3, 16, 16)))
                assert status == 413

    def test_double_start_rejected(self, front_door):
        door, _ = front_door
        with pytest.raises(RuntimeError):
            door.start()

    def test_stop_is_idempotent(self, mild_model):
        scheduler = Scheduler(batch_window_ms=5.0)
        scheduler.register("default", mild_model)
        door = FrontDoor(scheduler).start()
        door.stop()
        assert door.stop() == []            # second stop: clean no-op
        assert scheduler._thread is None    # managed thread came down


class TestConcurrentClients:
    def test_parallel_submit_and_wait(self, front_door, tiny_dataset):
        """Many clients with held-open waits at once: the wait pool and
        keep-alive handling must not serialize or drop anyone."""
        door, _ = front_door
        outcomes = {}

        def one(worker):
            with FrontDoorClient("127.0.0.1", door.port) as client:
                _, payload = client.submit(num_images=1, seed=worker)
                status, result = client.result(payload["request_id"],
                                               wait=True, timeout_ms=20_000)
                outcomes[worker] = (status, result["status"])

        threads = [threading.Thread(target=one, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes == {i: (200, "done") for i in range(8)}


class TestTwoTierOverHttp:
    def test_bursty_two_tier_replay(self, mild_model, aggressive_model):
        """The acceptance run, over real sockets: a bursty two-tier
        trace replayed through the load generator; class 0 keeps its
        (generous, real-clock) deadlines while admission control
        degrades and sheds class 1."""
        # Sized to stay overloaded even on a slow box: the batch window
        # (200 ms) far exceeds any realistic burst-submission span, so
        # backlog accumulates across bursts no matter how slowly the
        # client drips them in, while the premium tier keeps >= 150 ms
        # of deadline headroom (window flush at +200 ms vs 400 ms SLO).
        scheduler = Scheduler(batch_window_ms=200.0,
                              router=HighestFidelityRouter(),
                              deadline_margin_ms=150.0,
                              priority_tiers={0: 400.0, 1: 2000.0})
        mild = scheduler.register("mild", mild_model)
        scheduler.register("aggressive", aggressive_model)
        scheduler.admission_capacity_ms = mild.batch_cost_ms(4)
        trace = two_tier_trace(duration_ms=240.0, premium_period_ms=20.0,
                               bulk_burst_size=20, bulk_burst_period_ms=60.0,
                               seed=9)
        with FrontDoor(scheduler, poll_ms=0.5) as door:
            with FrontDoorClient("127.0.0.1", door.port) as client:
                outcomes = replay(trace, client.submit_trace_request)
                queued, shed = [], []
                for request, outcome in outcomes:
                    status, payload = outcome
                    if status == 200:
                        queued.append((request, payload["request_id"]))
                    else:
                        assert status == 429
                        assert payload["status"] == "shed"
                        assert request.priority == 1    # never class 0
                        shed.append(request)
                results = {}
                for request, request_id in queued:
                    status, result = client.result(request_id, wait=True,
                                                   timeout_ms=30_000)
                    assert status == 200
                    results[request_id] = (request, result)
                _, stats = client.stats()
        # Overload really happened and was admission-controlled.
        assert shed, "burst sizing no longer trips admission control"
        assert stats["classes"]["1"]["shed"] == len(shed)
        assert stats["classes"]["1"]["degraded"] > 0
        assert stats["server"]["shed"] == len(shed)
        # Every admitted request completed; premium all admitted.
        premium = [(req, res) for req, res in results.values()
                   if req.priority == 0]
        assert len(premium) == 12
        hits = sum(res["deadline_met"] for _, res in premium)
        assert hits / len(premium) >= 0.95
        # Degraded bulk really ran on the cheaper operating point.
        bulk_sessions = {res["session"] for req, res in results.values()
                        if req.priority == 1}
        assert "aggressive" in bulk_sessions