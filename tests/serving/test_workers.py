"""Multi-worker serving: pool parity, dispatch, drain, shutdown.

One spawn-context pool (2 workers) is built per module and reused --
startup is the expensive part.  The core claims:

* pooled execution is **bitwise identical** to in-process execution
  (logits, latency estimates, per-stage token counts, per-request
  ordering);
* dispatch is non-blocking (results arrive via collect, not inline);
* ``drain``/``shutdown`` are deterministic: afterwards nothing is
  queued, nothing is in flight, and no worker process or scheduler
  thread is left alive.
"""

import threading

import numpy as np
import pytest

from repro.core import HeatViT
from repro.data import SyntheticConfig, generate_dataset
from repro.engine import InferenceSession, SessionSpec
from repro.serving import (Request, Scheduler, SystemClock, VirtualClock,
                           WorkerPool, worker_payload)


@pytest.fixture(scope="module")
def served_model(tiny_backbone):
    model = HeatViT(tiny_backbone, {1: 0.7, 2: 0.5},
                    rng=np.random.default_rng(21))
    model.eval()
    return model


@pytest.fixture(scope="module")
def images():
    rng = np.random.default_rng(22)
    config = SyntheticConfig(image_size=16, num_classes=4)
    return generate_dataset(config, 16, rng).images


@pytest.fixture(scope="module")
def pooled_scheduler(served_model):
    scheduler = Scheduler(clock=VirtualClock(), batch_window_ms=10.0)
    scheduler.register("tiny", served_model, batch_size=16, workers=2,
                       worker_ctx="spawn")
    yield scheduler
    scheduler.shutdown()


def submit_all(scheduler, images, **kwargs):
    return [scheduler.submit(images[i], **kwargs)
            for i in range(images.shape[0])]


class TestPooledParity:
    def test_bitwise_identical_to_in_process(self, pooled_scheduler,
                                             served_model, images):
        reference_session = InferenceSession(served_model, batch_size=16)
        reference = reference_session.submit(images)
        ids = submit_all(pooled_scheduler, images)
        results = {r.request_id: r for r in pooled_scheduler.flush()}
        assert sorted(results) == sorted(ids)
        logits = np.concatenate([results[i].logits for i in ids])
        latency = np.concatenate([results[i].latency_ms for i in ids])
        np.testing.assert_array_equal(logits, reference.logits)
        np.testing.assert_array_equal(latency, reference.latency_ms)
        stages = len(reference.tokens_per_stage)
        for request_index, request_id in enumerate(ids):
            result = results[request_id]
            assert result.session == "tiny"
            assert len(result.tokens_per_stage) == stages
            for stage in range(stages):
                np.testing.assert_array_equal(
                    result.tokens_per_stage[stage],
                    reference.tokens_per_stage[stage][
                        request_index:request_index + 1])

    def test_flush_splits_across_both_workers(self, pooled_scheduler,
                                              images):
        pooled_scheduler.events.clear()
        submit_all(pooled_scheduler, images)
        pooled_scheduler.flush()
        workers = {event.worker for event in pooled_scheduler.events}
        assert workers == {0, 1}
        assert all(event.worker is not None
                   for event in pooled_scheduler.events)
        # Balanced shards: 16 single-image requests over 2 workers.
        assert sorted(event.num_images
                      for event in pooled_scheduler.events) == [8, 8]

    def test_calibration_learns_from_measured_timings(
            self, pooled_scheduler, images):
        served = pooled_scheduler.sessions[0]
        before = sum(served.placement.observations)
        submit_all(pooled_scheduler, images)
        pooled_scheduler.flush()
        assert sum(served.placement.observations) > before
        assert all(scale > 0 for scale in served.placement.calibration)
        assert served.placement.in_flight == (0, 0)


class TestNonBlockingDispatch:
    def test_flush_without_wait_leaves_batches_in_flight(
            self, pooled_scheduler, images):
        ids = submit_all(pooled_scheduler, images)
        completed = pooled_scheduler.flush(wait=False)
        assert completed == []
        assert pooled_scheduler.in_flight_batches() > 0
        assert pooled_scheduler.pending_requests() == 0
        drained = pooled_scheduler.drain()
        assert sorted(r.request_id for r in drained) == sorted(ids)
        assert pooled_scheduler.in_flight_batches() == 0

    def test_step_collects_in_flight_results(self, pooled_scheduler,
                                             images):
        ids = submit_all(pooled_scheduler, images)
        pooled_scheduler.flush(wait=False)
        collected = {}
        deadline = 60.0
        import time
        start = time.monotonic()
        while (len(collected) < len(ids)
               and time.monotonic() - start < deadline):
            for result in pooled_scheduler.step():
                collected[result.request_id] = result
        assert sorted(collected) == sorted(ids)


class TestWorkerPoolDirect:
    def test_error_reply_carries_traceback(self, served_model):
        session = InferenceSession(served_model, batch_size=4)
        with WorkerPool(session, 1, ctx="fork") as pool:
            bad = [np.zeros((1, 5, 5, 5))]           # wrong image shape
            pool.dispatch(7, bad, 0)
            replies = pool.poll(timeout_s=60.0)
            assert len(replies) == 1
            reply = replies[0]
            assert reply.kind == "error"
            assert reply.task_id == 7
            assert reply.error
            assert "Traceback" in reply.tb
            # The worker survives its task failure.
            good = [np.zeros((1,) + (3, 16, 16))]
            pool.dispatch(8, good, 0)
            follow_up = pool.poll(timeout_s=60.0)
            assert follow_up and follow_up[0].kind == "result"
        assert pool.closed
        assert pool.alive_workers() == []

    def test_dispatch_validates(self, served_model):
        session = InferenceSession(served_model, batch_size=4)
        pool = WorkerPool(session, 1, ctx="fork")
        try:
            with pytest.raises(ValueError):
                pool.dispatch(0, [], 5)
        finally:
            pool.close()
        with pytest.raises(RuntimeError):
            pool.dispatch(0, [], 0)
        pool.close()                                  # idempotent

    def test_worker_death_heals_on_drain(self, served_model, images):
        """A dead worker no longer sinks the target: dispatch avoids
        it, drain completes every request on the survivor, and the
        supervisor respawns the slot (recorded in stats)."""
        scheduler = Scheduler(clock=VirtualClock())
        scheduler.register("tiny", served_model, batch_size=16,
                           workers=2, worker_ctx="fork")
        pool = scheduler.sessions[0].pool
        try:
            victim = pool._processes[0]
            victim.terminate()
            victim.join(timeout=30)
            ids = submit_all(scheduler, images[:4])
            drained = scheduler.drain(timeout_ms=120_000)
            assert sorted(r.request_id for r in drained) == sorted(ids)
            assert all(not r.failed for r in drained)
            recovery = scheduler.stats()["sessions"]["tiny"]["recovery"]
            assert recovery["respawns"] >= 1
        finally:
            scheduler.shutdown(drain=False)

    def test_payload_prefers_spec(self, served_model, tiny_backbone):
        session = InferenceSession(served_model, batch_size=4)
        assert isinstance(worker_payload(session), SessionSpec)

        from tests.engine.test_spec import _PlainClassifier
        custom = HeatViT(
            tiny_backbone, {1: 0.6}, rng=np.random.default_rng(5),
            classifier_factory=lambda rng: _PlainClassifier(
                tiny_backbone.config.embed_dim,
                tiny_backbone.config.num_heads, rng))
        custom.eval()
        fallback = InferenceSession(custom, batch_size=4)
        assert worker_payload(fallback) is fallback


class _StubPool:
    """A fake WorkerPool for deterministic _collect edge cases."""

    def __init__(self, reply_batches, alive=(0, 1)):
        from repro.serving import RecoveryPolicy

        self.num_workers = 2
        self.recovery = RecoveryPolicy()
        self.closed = False
        self.fleet_down = False
        self.respawned = []
        self.terminated = []
        self._reply_batches = [list(batch) for batch in reply_batches]
        self._alive = list(alive)
        self._incarnations = [0] * self.num_workers

    def poll(self, timeout_s=0.0):
        return self._reply_batches.pop(0) if self._reply_batches else []

    def alive_workers(self):
        return list(self._alive)

    def liveness(self):
        return set(self._alive), tuple(self._incarnations)

    def terminate_worker(self, worker, incarnation=None):
        if (incarnation is not None
                and self._incarnations[worker] != incarnation):
            return
        self.terminated.append(worker)
        if worker in self._alive:
            self._alive.remove(worker)

    def respawn_dead(self):
        dead = [w for w in range(self.num_workers)
                if w not in self._alive]
        for worker in dead:
            self._incarnations[worker] += 1
        self._alive = sorted(self._alive + dead)
        self.respawned.extend(dead)
        return dead

    def supervision_snapshot(self):
        return {"alive": self.alive_workers(),
                "restarts": tuple(), "incarnations": tuple(),
                "heartbeat_age_s": tuple(),
                "fleet_down": self.fleet_down}


def _pooled_served(scheduler, name, model, images, per_request=1):
    """Register in-process, then wire a stub pool with two in-flight
    single-request batches (worker 0 and worker 1)."""
    from repro.serving import PlacementPolicy

    served = scheduler.register(name, model, batch_size=16)
    served.placement = PlacementPolicy(2)
    pending_requests = []
    for index, worker in enumerate((0, 1)):
        request_id = scheduler.submit(images[index])
        request = served.queue.pop_batch(max_images=per_request)[0]
        assert request.request_id == request_id
        ticket = served.placement.assign(5.0)
        assert ticket.worker == worker
        from repro.serving.scheduler import _InFlight
        served.pending[100 + index] = _InFlight(
            requests=[request], ticket=ticket, reason="forced")
        pending_requests.append(request)
    return served, pending_requests


class TestCollectEdgeCases:
    def test_error_reply_absorbed_sibling_results_survive(
            self, served_model, images):
        """An error reply drained in the same poll() as a result reply
        must not lose the result -- and must not raise either: the
        failed batch's requests go back on the queue with one unit of
        retry budget spent, and the error is recorded."""
        from repro.serving import WorkerReply

        scheduler = Scheduler(clock=VirtualClock())
        served, requests = _pooled_served(scheduler, "tiny", served_model,
                                          images)
        session = InferenceSession(served_model, batch_size=4)
        result = session.submit(requests[1].images)
        error_reply = WorkerReply(kind="error", worker=0, task_id=100,
                                  error="boom", tb="Traceback: boom")
        good_reply = WorkerReply(kind="result", worker=1, task_id=101,
                                 logits=result.logits,
                                 tokens_per_stage=result.tokens_per_stage,
                                 latency_ms=result.latency_ms,
                                 wall_time_s=result.wall_time_s,
                                 num_images=1)
        served.pool = _StubPool([[error_reply, good_reply]])
        scheduler._collect(served, block=False)       # no raise
        # The sibling result survived and is retrievable...
        completed = scheduler.pop_result(requests[1].request_id)
        assert completed is not None
        np.testing.assert_array_equal(completed.logits, result.logits)
        # ...and the failed batch's requests went back on the queue,
        # one retry consumed, the error absorbed into telemetry.
        assert len(served.queue) == 1
        assert requests[0].retries == 1
        assert served.pending == {}
        assert served.recovery["worker_errors"] == 1
        assert served.recovery["redispatched_requests"] == 1

    def test_duplicate_reply_dropped_at_most_once(
            self, served_model, images):
        """Two copies of one task's reply in the same drain: the first
        completes the batch, the second is dropped -- the result is
        delivered exactly once and counted once."""
        from repro.serving import WorkerReply

        scheduler = Scheduler(clock=VirtualClock())
        served, requests = _pooled_served(scheduler, "tiny", served_model,
                                          images)
        session = InferenceSession(served_model, batch_size=4)
        results = [session.submit(r.images) for r in requests]
        replies = []
        for task_id, result in zip((100, 101), results):
            replies.append(WorkerReply(
                kind="result", worker=task_id - 100, task_id=task_id,
                logits=result.logits,
                tokens_per_stage=result.tokens_per_stage,
                latency_ms=result.latency_ms,
                wall_time_s=result.wall_time_s, num_images=1))
        served.pool = _StubPool([[replies[0], replies[0], replies[1]]])
        completed = scheduler._collect(served, block=False)
        assert sorted(r.request_id for r in completed) \
            == sorted(r.request_id for r in requests)
        assert served.recovery["duplicate_replies"] == 1
        assert served.pending == {}
        stats = scheduler.stats()["classes"][requests[0].priority]
        assert stats["completed"] == 2                # not 3

    def test_stale_reply_for_retired_batch_is_dropped(
            self, served_model, images):
        """A worker that enqueues its reply and then dies: the death
        check retires + requeues the batch, and the late-drained reply
        must be dropped, not crash collection or double-complete."""
        from repro.serving import WorkerReply

        scheduler = Scheduler(clock=VirtualClock())
        served, requests = _pooled_served(scheduler, "tiny", served_model,
                                          images)
        session = InferenceSession(served_model, batch_size=4)
        result = session.submit(requests[0].images)
        stale = WorkerReply(kind="result", worker=0, task_id=100,
                            logits=result.logits,
                            tokens_per_stage=result.tokens_per_stage,
                            latency_ms=result.latency_ms,
                            wall_time_s=result.wall_time_s)
        # First poll: empty while worker 0 is dead -> batch retired,
        # its request requeued (no raise), the slot respawned.
        served.pool = _StubPool([[], [stale]], alive=[1])
        scheduler._collect(served, block=False)
        assert 100 not in served.pending
        assert len(served.queue) == 1
        assert served.pool.respawned == [0]
        # Second collect drains the stale reply: dropped silently.
        assert scheduler._collect(served, block=False) == []
        assert scheduler.pop_result(requests[0].request_id) is None
        assert list(served.pending) == [101]
        assert served.recovery["duplicate_replies"] == 1

    def test_step_recovers_dead_worker(self, served_model, images):
        """Non-blocking collection (the background-thread path) must
        recover a dead worker's batch instead of stranding its requests
        -- and instead of raising into the stepping thread."""
        scheduler = Scheduler(clock=VirtualClock())
        served, requests = _pooled_served(scheduler, "tiny", served_model,
                                          images)
        served.pool = _StubPool([], alive=[1])       # worker 0 died
        scheduler.step()                             # no raise
        # The dead worker's batch was requeued for re-dispatch and the
        # slot respawned; worker 1's is still legitimately in flight.
        assert len(served.queue) == 1
        assert list(served.pending) == [101]
        assert served.recovery["lost_batches"] == 1
        assert served.recovery["redispatched_requests"] == 1
        assert served.recovery["respawns"] == 1


class TestShardRequests:
    def make_requests(self, sizes):
        return [Request(request_id=i,
                        images=np.zeros((size, 3, 16, 16)),
                        arrival_ms=float(i))
                for i, size in enumerate(sizes)]

    def test_balanced_split_preserves_order(self):
        requests = self.make_requests([1] * 16)
        shards = Scheduler._shard_requests(requests, 2)
        assert [len(shard) for shard in shards] == [8, 8]
        flattened = [r.request_id for shard in shards for r in shard]
        assert flattened == list(range(16))

    def test_requests_stay_atomic(self):
        requests = self.make_requests([6, 1, 1])
        shards = Scheduler._shard_requests(requests, 2)
        assert [[r.request_id for r in shard] for shard in shards] \
            == [[0], [1, 2]]

    def test_fewer_requests_than_workers(self):
        requests = self.make_requests([1])
        assert Scheduler._shard_requests(requests, 4) == [requests]

    def test_every_shard_non_empty(self):
        for sizes in ([1, 1, 1], [9, 1, 1, 1], [1, 9], [2, 2, 2, 2, 2]):
            requests = self.make_requests(sizes)
            for workers in (2, 3, 4):
                shards = Scheduler._shard_requests(requests, workers)
                assert all(shards)
                assert sum(len(s) for s in shards) == len(requests)
                assert len(shards) <= workers


class TestGracefulShutdown:
    def test_background_thread_and_pool_join_cleanly(self, served_model,
                                                     images):
        threads_before = threading.active_count()
        scheduler = Scheduler(clock=SystemClock(), batch_window_ms=2.0)
        scheduler.register("tiny", served_model, batch_size=16,
                           workers=2, worker_ctx="fork")
        pool = scheduler.sessions[0].pool
        scheduler.start(poll_ms=1.0)
        ids = submit_all(scheduler, images, deadline_ms=5_000.0)
        results = [scheduler.wait_result(i, timeout_ms=60_000)
                   for i in ids]
        assert all(r.logits.shape == (1, 4) for r in results)
        drained = scheduler.shutdown()
        assert scheduler.pending_requests() == 0
        assert scheduler.in_flight_batches() == 0
        assert scheduler._thread is None
        assert pool.closed
        assert pool.alive_workers() == []
        assert not [t.name for t in threading.enumerate()
                    if "repro-serving" in t.name]
        # Queue feeder threads (stdlib-internal) exit asynchronously
        # after close(); give them a moment, then require the baseline.
        import time
        deadline = time.monotonic() + 10.0
        while (threading.active_count() > threads_before
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert threading.active_count() <= threads_before
        assert isinstance(drained, list)

    def test_context_manager_shuts_down(self, served_model, images):
        with Scheduler(clock=VirtualClock()) as scheduler:
            scheduler.register("tiny", served_model, batch_size=16,
                               workers=2, worker_ctx="fork")
            pool = scheduler.sessions[0].pool
            ids = submit_all(scheduler, images[:4])
            scheduler.flush(wait=False)
        assert pool.closed
        assert pool.alive_workers() == []
        # drain on exit completed the in-flight work
        assert all(scheduler.pop_result(i) is not None for i in ids)

    def test_shutdown_idempotent_and_without_pool(self, served_model):
        scheduler = Scheduler(clock=VirtualClock())
        scheduler.register("solo", served_model, batch_size=4)
        assert scheduler.shutdown() == []
        assert scheduler.shutdown() == []


class TestQuantizedPooledServing:
    """The int8 backend end to end through scheduler + worker pool.

    The acceptance chain: ``register(backend="int8", dtype=float64,
    workers=2)`` ships a :class:`SessionSpec` carrying backend and
    dtype to each child, the children rebuild the quantized session,
    and the pooled results are BITWISE equal to the
    :func:`repro.quant.quantize_model` simulation run in process.

    Two 8-image requests shard one per worker; the reference runs the
    same 8-image batches in process, because the quantized path's
    dynamic activation calibration is per batch tensor -- batch
    composition is part of the arithmetic, so parity is defined
    shard for shard."""

    def test_int8_pool_bitwise_qmodel_parity(self, served_model, images):
        import copy

        from repro.quant import PER_CHANNEL_CHILDREN, quantize_model

        sim = copy.deepcopy(served_model)
        quantize_model(sim, bits=8, per_channel=PER_CHANNEL_CHILDREN)
        sim.eval()
        sim_session = InferenceSession(sim, batch_size=8)
        reference = np.concatenate([
            sim_session.submit(images[:8]).logits,
            sim_session.submit(images[8:]).logits])
        with Scheduler(clock=VirtualClock(),
                       batch_window_ms=10.0) as scheduler:
            scheduler.register("q8", served_model, batch_size=16,
                               backend="int8", dtype=np.float64,
                               workers=2, worker_ctx="fork")
            assert scheduler.sessions[0].session.backend == "int8"
            first = scheduler.submit(images[:8])
            second = scheduler.submit(images[8:])
            results = {r.request_id: r for r in scheduler.flush()}
        assert sorted(results) == [first, second]
        logits = np.concatenate([results[first].logits,
                                 results[second].logits])
        assert logits.tobytes() == reference.tobytes()

    def test_int8_f32_pool_matches_in_process(self, served_model, images):
        """The timed float32 grade, pooled vs in process: the same
        backend rebuilt from the spec must be bitwise reproducible."""
        session = InferenceSession(served_model, batch_size=8,
                                   backend="int8")
        reference = np.concatenate([session.submit(images[:8]).logits,
                                    session.submit(images[8:]).logits])
        with Scheduler(clock=VirtualClock(),
                       batch_window_ms=10.0) as scheduler:
            scheduler.register("q8", served_model, batch_size=16,
                               backend="int8", workers=2,
                               worker_ctx="fork")
            first = scheduler.submit(images[:8])
            second = scheduler.submit(images[8:])
            results = {r.request_id: r for r in scheduler.flush()}
        logits = np.concatenate([results[first].logits,
                                 results[second].logits])
        assert logits.tobytes() == reference.tobytes()


class TestDispatchCloseRace:
    """Regression: ``dispatch`` used to read ``self._closed`` and touch
    the task queues with no synchronization against ``close()``, so a
    dispatcher racing a shutdown could enqueue into a released queue
    (raising ``ValueError``/``OSError`` from multiprocessing internals,
    or silently losing the task).  Both are now serialized on the
    pool's state lock: a racing dispatch either lands before the close
    or fails cleanly with ``RuntimeError("worker pool is closed")``."""

    def test_concurrent_dispatch_and_close(self, served_model, images):
        session = InferenceSession(served_model, batch_size=4)
        pool = WorkerPool(session, 1, ctx="fork")
        unexpected = []
        dispatched = []
        overlapped = threading.Event()

        def hammer():
            for task_id in range(200):
                try:
                    pool.dispatch(task_id, [images[:1]], 0)
                    dispatched.append(task_id)
                except RuntimeError:
                    break                   # clean "pool is closed"
                except Exception as exc:    # the pre-fix failure mode
                    unexpected.append(exc)
                    break
                if len(dispatched) >= 5:
                    overlapped.set()        # real overlap reached
            overlapped.set()

        stop_polling = threading.Event()

        def drain():
            # Keep the result pipe drained so the worker can always
            # make progress toward the shutdown sentinel.
            while not stop_polling.is_set():
                try:
                    pool.poll(timeout_s=0.05)
                except Exception:
                    return

        thread = threading.Thread(target=hammer)
        drainer = threading.Thread(target=drain)
        thread.start()
        drainer.start()
        overlapped.wait(timeout=30.0)
        pool.close()
        thread.join()
        stop_polling.set()
        drainer.join()
        assert unexpected == []
        assert pool.closed
        assert pool.alive_workers() == []

    def test_concurrent_poll_and_close(self, served_model, images):
        """A blocked poll() racing close(): the poller must return
        cleanly (empty or with real replies), never raise from
        multiprocessing internals on the released queue."""
        session = InferenceSession(served_model, batch_size=4)
        pool = WorkerPool(session, 1, ctx="fork")
        errors = []
        polled = threading.Event()

        def poller():
            try:
                for _ in range(1000):
                    pool.poll(timeout_s=0.02)
                    polled.set()
                    if pool.closed:
                        return
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=poller) for _ in range(3)]
        for thread in threads:
            thread.start()
        assert polled.wait(timeout=30.0)
        pool.dispatch(0, [images[:1]], 0)
        pool.close()
        for thread in threads:
            thread.join(timeout=30.0)
        assert errors == []
        assert pool.closed
        assert pool.alive_workers() == []

    def test_shutdown_while_stepping(self, served_model, images):
        """Scheduler-level version: the background stepping thread is
        mid-dispatch when ``shutdown`` runs.  Shutdown must win cleanly
        -- no exception escapes the stepper, every admitted request
        either completes or is returned by the drain, and no worker
        process survives."""
        scheduler = Scheduler(clock=SystemClock(), batch_window_ms=0.0)
        scheduler.register("tiny", served_model, batch_size=16,
                           workers=2, worker_ctx="fork")
        scheduler.start(poll_ms=0.1)
        submitted = [scheduler.submit(images[i % images.shape[0]])
                     for i in range(20)]
        drained = scheduler.shutdown(drain=True)
        collected = {r.request_id for r in drained}
        for request_id in submitted:
            result = scheduler.pop_result(request_id)
            assert request_id in collected or result is not None
        assert scheduler.sessions[0].pool.closed
        assert scheduler.sessions[0].pool.alive_workers() == []
        assert scheduler._thread is None
