"""Tests for the competing pruning baselines."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import (ChannelPrunedViT, EViTStyleModel,
                             HeadPrunedViT, StaticTokenPruningViT,
                             channel_pruned_gmacs, head_pruned_gmacs,
                             rank_channels_by_importance,
                             rank_heads_by_importance)
from repro.vit import StagePlan, model_gmacs


@pytest.fixture()
def plan(tiny_config):
    return StagePlan.canonical(tiny_config.depth, (0.7, 0.5, 0.3))


class TestStaticPruning:
    def test_logits_shape(self, tiny_backbone, tiny_dataset, plan):
        model = StaticTokenPruningViT(tiny_backbone, plan)
        logits = model(tiny_dataset.images[:4])
        assert logits.shape == (4, 4)

    def test_same_token_count_for_all_images(self, tiny_backbone,
                                             tiny_dataset, plan):
        """Static pruning is input-agnostic by definition."""
        model = StaticTokenPruningViT(tiny_backbone, plan)
        a = model(tiny_dataset.images[:2])
        b = model(tiny_dataset.images[2:4])
        assert a.shape == b.shape     # batched => same count, trivially

    def test_gmacs_below_dense(self, tiny_backbone, plan):
        model = StaticTokenPruningViT(tiny_backbone, plan)
        assert model.gmacs() < model_gmacs(tiny_backbone.config)

    def test_accuracy_helper(self, tiny_backbone, tiny_dataset, plan):
        model = StaticTokenPruningViT(tiny_backbone, plan)
        acc = model.accuracy(tiny_dataset.images[:16],
                             tiny_dataset.labels[:16])
        assert 0.0 <= acc <= 1.0

    def test_keeps_highest_attention_tokens(self, tiny_backbone,
                                            tiny_dataset):
        """With an extreme one-stage plan, the kept token must be the
        argmax of the CLS attention."""
        config = tiny_backbone.config
        plan = StagePlan(boundaries=(1,), keep_ratios=(1 / 16,))
        model = StaticTokenPruningViT(tiny_backbone, plan)
        images = tiny_dataset.images[:1]
        with nn.no_grad():
            x = tiny_backbone.embed(images)
            x = tiny_backbone.blocks[0](x)
        expected = tiny_backbone.blocks[0].attn.cls_attention().mean(
            axis=1)[0, 1:].argmax()
        pruned, _ = model._prune(x, 1 / 16, 1, False)
        kept_token = pruned.data[0, 1]
        assert np.allclose(kept_token, x.data[0, 1 + expected])


class TestEViTStyle:
    def test_adds_fused_token(self, tiny_backbone, tiny_dataset, plan):
        evit = EViTStyleModel(tiny_backbone, plan)
        static = StaticTokenPruningViT(tiny_backbone, plan)
        # Same ranking, different handling of pruned tokens => logits
        # must differ (the fused token participates).
        a = evit(tiny_dataset.images[:2]).data
        b = static(tiny_dataset.images[:2]).data
        assert not np.allclose(a, b)


class TestHeadPruning:
    def test_ranking_covers_all_heads(self, tiny_backbone, tiny_dataset):
        ranking = rank_heads_by_importance(tiny_backbone,
                                           tiny_dataset.images[:8])
        config = tiny_backbone.config
        assert len(ranking) == config.depth * config.num_heads
        assert len(set(ranking)) == len(ranking)

    def test_pruned_heads_have_no_effect(self, tiny_backbone,
                                         tiny_dataset):
        """Zeroing a head must equal never computing it: outputs change
        when we prune a useful head."""
        model = HeadPrunedViT(tiny_backbone, [(0, 0)])
        with nn.no_grad():
            base = tiny_backbone(tiny_dataset.images[:2]).data
        pruned = model(tiny_dataset.images[:2]).data
        assert not np.allclose(base, pruned)

    def test_no_pruning_matches_backbone(self, tiny_backbone,
                                         tiny_dataset):
        model = HeadPrunedViT(tiny_backbone, [])
        with nn.no_grad():
            base = tiny_backbone(tiny_dataset.images[:2]).data
        assert np.allclose(model(tiny_dataset.images[:2]).data, base)

    def test_invalid_head(self, tiny_backbone):
        with pytest.raises(ValueError):
            HeadPrunedViT(tiny_backbone, [(0, 99)])

    def test_gmacs_saturate(self, tiny_config):
        """Head pruning cannot reach the FFN: even pruning half of all
        heads saves < 43% of compute (Sec. II-B)."""
        total_heads = tiny_config.depth * tiny_config.num_heads
        dense = model_gmacs(tiny_config)
        half = head_pruned_gmacs(tiny_config, total_heads // 2)
        assert (dense - half) / dense < 0.43


class TestChannelPruning:
    def test_ranking(self, tiny_backbone):
        ranking = rank_channels_by_importance(tiny_backbone)
        assert sorted(ranking) == list(range(
            tiny_backbone.config.embed_dim))

    def test_masked_channels_are_zero(self, tiny_backbone, tiny_dataset):
        model = ChannelPrunedViT(tiny_backbone, [0, 5])
        logits = model(tiny_dataset.images[:2])
        assert logits.shape == (2, 4)

    def test_invalid_channel(self, tiny_backbone):
        with pytest.raises(ValueError):
            ChannelPrunedViT(tiny_backbone, [999])

    def test_gmacs_quadratic_savings(self, tiny_config):
        dense = model_gmacs(tiny_config)
        half = channel_pruned_gmacs(tiny_config,
                                    tiny_config.embed_dim // 2)
        # Linear layers scale ~quadratically: half channels -> well
        # under half the compute.
        assert half < 0.5 * dense


class TestTradeoffShape:
    def test_token_pruning_saves_more_per_accuracy_unit(self, tiny_config):
        """At matched GMACs, token pruning reaches lower cost than head
        pruning can at its saturation point (the Fig. 2 argument)."""
        from repro.vit import pruned_model_gmacs
        aggressive = StagePlan.canonical(tiny_config.depth,
                                         (0.42, 0.21, 0.13))
        token_cost = pruned_model_gmacs(tiny_config, aggressive)
        all_heads = tiny_config.depth * tiny_config.num_heads
        head_floor = head_pruned_gmacs(tiny_config, all_heads)
        assert token_cost < head_floor
