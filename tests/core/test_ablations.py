"""Tests for the selector ablation variants."""

import numpy as np
import pytest

from repro import nn
from repro.core import (HeatViT, SingleHeadTokenClassifier, TokenSelector,
                        UniformHeadSelector, make_single_head_factory)
from repro.nn.tensor import Tensor


DIM, HEADS, TOKENS = 24, 3, 10


class TestSingleHeadClassifier:
    def test_interface_matches_multihead(self, rng):
        classifier = SingleHeadTokenClassifier(DIM, HEADS, rng=rng)
        x = Tensor(rng.normal(size=(2, TOKENS, DIM)))
        scores = classifier(x)
        assert scores.shape == (2, HEADS, TOKENS, 2)
        assert np.allclose(scores.data.sum(-1), 1.0)

    def test_heads_are_identical_copies(self, rng):
        """The ablation has no per-head structure by construction."""
        classifier = SingleHeadTokenClassifier(DIM, HEADS, rng=rng)
        scores = classifier(Tensor(rng.normal(size=(1, TOKENS, DIM)))).data
        assert np.allclose(scores[0, 0], scores[0, 1])
        assert np.allclose(scores[0, 0], scores[0, 2])

    def test_masked_pooling(self, rng):
        classifier = SingleHeadTokenClassifier(DIM, HEADS, rng=rng)
        x = rng.normal(size=(1, TOKENS, DIM))
        mask = np.ones((1, TOKENS))
        mask[0, :3] = 0.0
        masked = classifier(Tensor(x), mask=mask).data
        alive = [i for i in range(TOKENS) if i >= 3]
        gathered = classifier(Tensor(x[:, alive])).data
        assert np.allclose(masked[:, :, alive], gathered, atol=1e-9)

    def test_plugs_into_heatvit(self, tiny_backbone, rng):
        factory = make_single_head_factory(
            tiny_backbone.config.embed_dim,
            tiny_backbone.config.num_heads)
        model = HeatViT(tiny_backbone, {2: 0.6}, rng=rng,
                        classifier_factory=factory)
        model.eval()
        images = rng.normal(size=(2, 3, 16, 16))
        with nn.no_grad():
            masked = model(images).data
        gathered = model.forward_pruned(images).data
        assert np.allclose(masked, gathered, atol=1e-6)


class TestUniformHeadSelector:
    def test_uniform_importance(self, rng):
        selector = UniformHeadSelector(DIM, HEADS, rng=rng)
        x = Tensor(rng.normal(size=(2, TOKENS, DIM)))
        scores, importance = selector.token_scores(x)
        assert np.allclose(importance.data, 1.0 / HEADS)
        # Scores are the plain head average.
        normed = selector.norm(x)
        per_head = selector.classifier(normed).data
        assert np.allclose(scores.data, per_head.mean(axis=1), atol=1e-9)

    def test_differs_from_learned_weighting(self, rng):
        seed_rng = np.random.default_rng(3)
        learned = TokenSelector(DIM, HEADS, rng=np.random.default_rng(3))
        uniform = UniformHeadSelector(DIM, HEADS,
                                      rng=np.random.default_rng(3))
        uniform.load_state_dict(learned.state_dict())
        x = Tensor(rng.normal(size=(1, TOKENS, DIM)))
        a, _ = learned.token_scores(x)
        b, _ = uniform.token_scores(x)
        assert not np.allclose(a.data, b.data)

    def test_trains_end_to_end(self, tiny_backbone, tiny_dataset):
        """UniformHeadSelector can replace the standard selectors."""
        model = HeatViT(tiny_backbone, {2: 0.6},
                        rng=np.random.default_rng(0))
        uniform = UniformHeadSelector(
            tiny_backbone.config.embed_dim,
            tiny_backbone.config.num_heads, keep_ratio=0.6,
            rng=np.random.default_rng(1))
        model.selectors.register_module("0", uniform)
        model.selectors._order[0] = "0"
        model.train()
        from repro.core import TrainConfig, heatvit_loss
        loss, record = heatvit_loss(
            model, tiny_dataset.images[:4], tiny_dataset.labels[:4],
            TrainConfig(lambda_distill=0.0))
        loss.backward()
        assert any(p.grad is not None for p in uniform.parameters())
