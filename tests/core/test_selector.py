"""Unit tests for the token selector (classifier, branch, packager)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor
from repro.core import (AttentionBranch, MultiHeadTokenClassifier,
                        TokenSelector)


DIM, HEADS, TOKENS, BATCH = 24, 3, 10, 2


@pytest.fixture()
def selector(rng):
    return TokenSelector(DIM, HEADS, rng=rng)


@pytest.fixture()
def tokens(rng):
    return Tensor(rng.normal(size=(BATCH, TOKENS, DIM)))


class TestClassifier:
    def test_output_shape_and_simplex(self, rng, tokens):
        classifier = MultiHeadTokenClassifier(DIM, HEADS, rng=rng)
        scores = classifier(tokens)
        assert scores.shape == (BATCH, HEADS, TOKENS, 2)
        assert np.allclose(scores.data.sum(axis=-1), 1.0)
        assert np.all(scores.data >= 0)

    def test_masked_global_pool_matches_gathered(self, rng):
        """Scoring alive tokens with a mask must equal scoring only the
        alive tokens -- the masked-training / gathered-inference
        equivalence."""
        classifier = MultiHeadTokenClassifier(DIM, HEADS, rng=rng)
        x = rng.normal(size=(1, TOKENS, DIM))
        mask = np.ones((1, TOKENS))
        dead = [2, 5, 6]
        mask[0, dead] = 0.0
        masked_scores = classifier(Tensor(x), mask=mask).data
        alive = [i for i in range(TOKENS) if i not in dead]
        gathered_scores = classifier(Tensor(x[:, alive, :])).data
        assert np.allclose(masked_scores[:, :, alive, :], gathered_scores,
                           atol=1e-9)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            MultiHeadTokenClassifier(25, 3)

    def test_heads_score_independently(self, rng):
        """Perturbing one head's subvector must not change other heads'
        local scores (only via the shared global pool)."""
        classifier = MultiHeadTokenClassifier(DIM, HEADS, rng=rng)
        x = rng.normal(size=(1, TOKENS, DIM))
        base = classifier(Tensor(x)).data
        d = DIM // HEADS
        x2 = x.copy()
        x2[0, 0, :d] += 10.0          # head 0 of token 0
        moved = classifier(Tensor(x2)).data
        # Head 0 scores change (token 0 directly, others via the
        # per-head global pool)...
        assert np.abs(moved[0, 0] - base[0, 0]).max() > 0
        # ...while heads 1..2 are exactly untouched: feature extraction
        # and global pooling are both per-head.
        assert np.abs(moved[0, 1:] - base[0, 1:]).max() == 0.0


class TestAttentionBranch:
    def test_shape_and_range(self, rng, tokens):
        branch = AttentionBranch(DIM, HEADS, rng=rng)
        importance = branch(tokens)
        assert importance.shape == (BATCH, TOKENS, HEADS)
        assert np.all((importance.data > 0) & (importance.data < 1))


class TestSelector:
    def test_overall_scores_weighted_average(self, rng, tokens):
        selector = TokenSelector(DIM, HEADS, rng=rng)
        scores, importance = selector.token_scores(tokens)
        normed = selector.norm(tokens)
        per_head = selector.classifier(normed).data
        weights = importance.data.transpose(0, 2, 1)[..., None]
        manual = ((per_head * weights).sum(axis=1)
                  / (weights.sum(axis=1) + 1e-8))
        assert np.allclose(scores.data, manual, atol=1e-9)
        assert np.allclose(scores.data.sum(-1), 1.0, atol=1e-6)

    def test_eval_decision_is_deterministic_argmax(self, selector, tokens):
        selector.eval()
        out1 = selector(tokens)
        out2 = selector(tokens)
        assert np.array_equal(out1.decision.data, out2.decision.data)
        keep = out1.keep_probs.data[..., 0] >= out1.keep_probs.data[..., 1]
        assert np.array_equal(out1.decision.data.astype(bool), keep)

    def test_train_decision_is_binary(self, selector, tokens):
        selector.train()
        out = selector(tokens)
        assert set(np.unique(out.decision.data)).issubset({0.0, 1.0})

    def test_incoming_mask_is_respected(self, selector, tokens):
        selector.eval()
        incoming = np.ones((BATCH, TOKENS))
        incoming[:, :4] = 0.0
        out = selector(tokens, incoming_mask=incoming)
        assert np.all(out.decision.data[:, :4] == 0.0)

    def test_keep_fraction(self, selector, tokens):
        selector.eval()
        out = selector(tokens)
        frac = out.keep_fraction()
        assert frac == pytest.approx(out.decision.data.mean())

    def test_gradients_flow_through_decision(self, rng):
        selector = TokenSelector(DIM, HEADS, rng=rng)
        selector.train()
        x = Tensor(rng.normal(size=(1, TOKENS, DIM)), requires_grad=True)
        out = selector(x)
        (out.decision.sum() + (out.package ** 2).sum()).backward()
        grads = [p.grad for p in selector.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)


class TestPackager:
    def test_package_is_convex_combination(self, selector, tokens):
        """Eq. 10: the package lies in the convex hull of pruned tokens."""
        selector.eval()
        out = selector(tokens)
        pruned_mask = 1.0 - out.decision.data
        for b in range(BATCH):
            idx = np.flatnonzero(pruned_mask[b])
            if not idx.size:
                continue
            weights = out.keep_probs.data[b, idx, 0]
            weights = weights / weights.sum()
            manual = (tokens.data[b, idx] * weights[:, None]).sum(axis=0)
            assert np.allclose(out.package.data[b, 0], manual, atol=1e-6)

    def test_package_only_uses_newly_pruned(self, selector, tokens):
        """Tokens dead on entry must not leak into the new package."""
        selector.eval()
        incoming = np.ones((BATCH, TOKENS))
        incoming[:, 0] = 0.0
        poisoned = tokens.data.copy()
        poisoned[:, 0, :] = 1e6        # huge values in the dead token
        out = selector(Tensor(poisoned), incoming_mask=incoming)
        assert np.abs(out.package.data).max() < 1e5

    def test_all_kept_gives_finite_package(self, rng):
        selector = TokenSelector(DIM, HEADS, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, DIM)))
        scores = Tensor(np.stack([np.ones((1, 4)), np.zeros((1, 4))],
                                 axis=-1))
        package = TokenSelector.package_tokens(x, Tensor(np.zeros((1, 4))),
                                               scores)
        assert np.all(np.isfinite(package.data))
