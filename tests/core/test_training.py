"""Tests for the training loops and the block-to-stage strategy."""

import numpy as np
import pytest

from repro.core import (BlockToStageTrainer, HeatViT, LatencySparsityTable,
                        TrainConfig, consolidate_stages, heatvit_loss,
                        iterate_minibatches, train_backbone, train_heatvit)
from repro.core.training import _enforce_monotone
from repro.vit import VisionTransformer, ViTConfig


SMALL = ViTConfig(name="train-test", image_size=16, patch_size=4,
                  embed_dim=24, depth=4, num_heads=3, num_classes=4)


class TestMinibatches:
    def test_covers_all_samples(self, rng):
        images = np.arange(10)[:, None]
        labels = np.arange(10)
        seen = []
        for bi, bl in iterate_minibatches(images, labels, 3, rng):
            assert np.array_equal(bi[:, 0], bl)
            seen.extend(bl.tolist())
        assert sorted(seen) == list(range(10))

    def test_no_shuffle_preserves_order(self, rng):
        labels = np.arange(8)
        batches = list(iterate_minibatches(labels[:, None], labels, 4, rng,
                                           shuffle=False))
        assert batches[0][1].tolist() == [0, 1, 2, 3]


class TestTrainBackbone:
    def test_loss_decreases(self, tiny_dataset):
        model = VisionTransformer(SMALL, rng=np.random.default_rng(0))
        config = TrainConfig(epochs=3, batch_size=16, lr=3e-3, seed=0)
        history = train_backbone(model, tiny_dataset.images,
                                 tiny_dataset.labels, config)
        assert history[-1].loss < history[0].loss

    def test_validation_accuracy_reported(self, tiny_dataset):
        model = VisionTransformer(SMALL, rng=np.random.default_rng(0))
        config = TrainConfig(epochs=1, batch_size=16, lr=1e-3)
        history = train_backbone(
            model, tiny_dataset.images, tiny_dataset.labels, config,
            val_images=tiny_dataset.images[:16],
            val_labels=tiny_dataset.labels[:16])
        assert 0.0 <= history[0].accuracy <= 1.0


class TestHeatViTLoss:
    def test_components_compose(self, tiny_backbone, tiny_dataset, rng):
        model = HeatViT(tiny_backbone, {2: 0.6}, rng=rng)
        model.train()
        config = TrainConfig(lambda_distill=0.0, lambda_ratio=0.0)
        plain, record = heatvit_loss(model, tiny_dataset.images[:4],
                                     tiny_dataset.labels[:4], config)
        assert len(record.decisions) == 1
        config_ratio = TrainConfig(lambda_distill=0.0, lambda_ratio=5.0)
        with_ratio, _ = heatvit_loss(model, tiny_dataset.images[:4],
                                     tiny_dataset.labels[:4], config_ratio)
        assert np.isfinite(plain.item())
        assert np.isfinite(with_ratio.item())

    def test_distillation_uses_teacher(self, tiny_backbone, tiny_dataset,
                                       rng):
        model = HeatViT(tiny_backbone, {2: 0.6}, rng=rng)
        model.train()
        config = TrainConfig(lambda_distill=0.5, lambda_ratio=0.0)
        with_teacher, _ = heatvit_loss(
            model, tiny_dataset.images[:4], tiny_dataset.labels[:4],
            config, teacher=tiny_backbone)
        without, _ = heatvit_loss(
            model, tiny_dataset.images[:4], tiny_dataset.labels[:4],
            config, teacher=None)
        assert with_teacher.item() != pytest.approx(without.item())


class TestTrainHeatViT:
    def test_keep_ratio_moves_toward_target(self, tiny_dataset):
        backbone = VisionTransformer(SMALL, rng=np.random.default_rng(1))
        model = HeatViT(backbone, {2: 0.5},
                        rng=np.random.default_rng(2))
        config = TrainConfig(epochs=4, batch_size=16, lr=3e-3,
                             lambda_distill=0.0, lambda_ratio=8.0, seed=1)
        history = train_heatvit(model, tiny_dataset.images,
                                tiny_dataset.labels, config)
        first_gap = abs(history[0].keep_ratios[0] - 0.5)
        last_gap = abs(history[-1].keep_ratios[0] - 0.5)
        assert last_gap <= first_gap + 0.05

    def test_freeze_backbone(self, tiny_dataset):
        backbone = VisionTransformer(SMALL, rng=np.random.default_rng(1))
        before = backbone.state_dict()
        model = HeatViT(backbone, {2: 0.5}, rng=np.random.default_rng(2))
        config = TrainConfig(epochs=1, batch_size=24, lr=1e-2,
                             lambda_distill=0.0)
        train_heatvit(model, tiny_dataset.images[:24],
                      tiny_dataset.labels[:24], config,
                      freeze_backbone=True)
        after = backbone.state_dict()
        for name in before:
            assert np.allclose(before[name], after[name]), name
        # And the flag is restored afterwards.
        assert all(p.requires_grad for p in backbone.parameters())


class TestConsolidation:
    def test_similar_ratios_merge(self):
        boundaries, ratios = consolidate_stages(
            {4: 0.70, 5: 0.68, 6: 0.40, 7: 0.38, 8: 0.20},
            merge_threshold=0.085)
        assert boundaries == [4, 6, 8]
        assert ratios == [0.70, 0.40, 0.20]

    def test_distinct_ratios_stay(self):
        boundaries, ratios = consolidate_stages({3: 0.9, 6: 0.5})
        assert boundaries == [3, 6]

    def test_empty(self):
        assert consolidate_stages({}) == ([], [])

    def test_enforce_monotone(self):
        result = _enforce_monotone({3: 0.5, 6: 0.8, 9: 0.3})
        assert result == {3: 0.5, 6: 0.5, 9: 0.3}


class TestBlockToStage:
    def test_algorithm_runs_and_meets_structure(self, tiny_dataset):
        backbone = VisionTransformer(SMALL, rng=np.random.default_rng(3))
        table = LatencySparsityTable(
            {0.5: 0.6, 0.6: 0.7, 0.7: 0.8, 0.8: 0.88, 0.9: 0.95, 1.0: 1.0})
        trainer = BlockToStageTrainer(
            backbone,
            (tiny_dataset.images[:32], tiny_dataset.labels[:32]),
            (tiny_dataset.images[32:], tiny_dataset.labels[32:]),
            table,
            TrainConfig(epochs=1, batch_size=16, lr=1e-3,
                        lambda_distill=0.0),
            min_block=2, ratio_grid=(0.7, 0.5),
            rng=np.random.default_rng(4))
        model, report = trainer.run(latency_limit=3.9,
                                    accuracy_drop=1.0)
        assert isinstance(model, HeatViT)
        assert report.stage_boundaries
        # Selectors never sit in the protected front blocks.
        assert min(report.stage_boundaries) >= 2
        # Cumulative ratios non-increasing across stages.
        ratios = report.stage_keep_ratios
        assert all(b <= a for a, b in zip(ratios, ratios[1:]))
        assert report.epochs_spent > 0
        assert np.isfinite(report.final_latency_ms)
