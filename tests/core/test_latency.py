"""Tests for the latency-sparsity table and loss (Eqs. 18-20)."""

import numpy as np
import pytest

from repro.core import (LatencySparsityTable, confidence_loss,
                        latency_from_stage_counts, latency_sparsity_loss,
                        paper_latency_table, ratios_for_latency_budget)
from repro.core.latency import latency_for_keep_ratios
from repro.nn.tensor import Tensor


class TestTable:
    def test_paper_values_deit_t(self):
        table = paper_latency_table("DeiT-T")
        assert table.latency(1.0) == pytest.approx(1.034)
        assert table.latency(0.5) == pytest.approx(0.636)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            paper_latency_table("DeiT-B")

    def test_interpolation_between_grid_points(self):
        table = paper_latency_table("DeiT-S")
        mid = table.latency(0.75)
        assert table.latency(0.7) < mid < table.latency(0.8)

    def test_clipping_outside_range(self):
        table = paper_latency_table("DeiT-T")
        assert table.latency(0.1) == table.latency(0.5)
        assert table.latency(2.0) == table.latency(1.0)

    def test_inverse_lookup_roundtrip(self):
        table = paper_latency_table("DeiT-T")
        for ratio in (0.5, 0.62, 0.8, 1.0):
            latency = table.latency(ratio)
            assert table.ratio_for_latency(latency) == pytest.approx(
                ratio, abs=1e-9)

    def test_model_latency_sums_blocks(self):
        table = paper_latency_table("DeiT-T")
        total = table.model_latency([1.0] * 12)
        assert total == pytest.approx(12 * 1.034)

    def test_monotonicity_required(self):
        with pytest.raises(ValueError):
            LatencySparsityTable({0.5: 2.0, 1.0: 1.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencySparsityTable({})


class TestLoss:
    def test_zero_at_target(self):
        decisions = [Tensor(np.full((4, 10), 0.7))]
        loss = latency_sparsity_loss(decisions, [0.7])
        assert loss.item() == pytest.approx(0.0)

    def test_quadratic_in_gap(self):
        decisions = [Tensor(np.full((2, 10), 0.5))]
        small = latency_sparsity_loss(decisions, [0.6]).item()
        large = latency_sparsity_loss(decisions, [0.7]).item()
        assert large == pytest.approx(4 * small)

    def test_batch_average_allows_adaptivity(self):
        """Per-image keep ratios may differ as long as the mean hits the
        target -- the paper's 'average pruning rate' convergence goal."""
        varied = np.concatenate([np.ones((2, 10)) * 0.9,
                                 np.ones((2, 10)) * 0.5])
        loss = latency_sparsity_loss([Tensor(varied)], [0.7])
        assert loss.item() == pytest.approx(0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            latency_sparsity_loss([Tensor(np.ones((1, 2)))], [0.5, 0.5])

    def test_gradient_flows(self):
        decision = Tensor(np.full((2, 5), 0.9), requires_grad=True)
        latency_sparsity_loss([decision], [0.5]).backward()
        assert decision.grad is not None
        assert np.all(decision.grad > 0)    # pushes decisions down


class TestConfidenceLoss:
    def _scores(self, keep):
        keep = np.asarray(keep, dtype=np.float64)
        return Tensor(np.stack([keep, 1.0 - keep], axis=-1))

    def test_zero_when_bimodal_at_target(self):
        # 2 of 4 tokens confidently kept; target ratio 0.5.
        keep = np.array([[0.999999, 0.999999, 1e-7, 1e-7]])
        loss = confidence_loss([self._scores(keep)],
                               [np.ones((1, 4))], [0.5])
        assert loss.item() < 1e-4

    def test_uniform_scores_penalized(self):
        """The failure mode the term exists for: uniform score = rho
        satisfies the ratio loss but must be penalized here."""
        uniform = np.full((1, 4), 0.7)
        loss = confidence_loss([self._scores(uniform)],
                               [np.ones((1, 4))], [0.5])
        assert loss.item() > 0.3

    def test_targets_follow_ranking(self):
        keep = Tensor(np.stack([np.array([[0.9, 0.6, 0.4, 0.1]]),
                                1 - np.array([[0.9, 0.6, 0.4, 0.1]])],
                               axis=-1), requires_grad=True)
        loss = confidence_loss([keep], [np.ones((1, 4))], [0.5])
        loss.backward()
        grad = keep.grad[0, :, 0]
        # Top-2 tokens pushed up (negative grad on keep prob means up
        # after descent), bottom-2 pushed down.
        assert grad[0] < 0 and grad[1] < 0
        assert grad[2] > 0 and grad[3] > 0

    def test_dead_tokens_excluded(self):
        keep = np.array([[0.5, 0.5, 0.9, 0.1]])
        alive = np.array([[0.0, 0.0, 1.0, 1.0]])
        # Only tokens 2, 3 participate: target keeps ceil(0.25*4)=1,
        # token 2 wins, token 3 gets 0; both already near-correct.
        loss_alive = confidence_loss([self._scores(keep)], [alive],
                                     [0.25])
        keep_sharp = np.array([[0.5, 0.5, 0.999999, 1e-7]])
        loss_sharp = confidence_loss([self._scores(keep_sharp)], [alive],
                                     [0.25])
        assert loss_sharp.item() < loss_alive.item()

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            confidence_loss([self._scores(np.ones((1, 2)))], [], [0.5])


class TestBudgetAssignment:
    def test_no_pruning_when_budget_loose(self):
        table = paper_latency_table("DeiT-T")
        ratios = ratios_for_latency_budget(table, 12, latency_limit=100.0)
        assert ratios == [1.0] * 12

    def test_back_blocks_pruned_first(self):
        table = paper_latency_table("DeiT-T")
        ratios = ratios_for_latency_budget(table, 12, latency_limit=12.0)
        assert ratios[-1] < 1.0
        assert all(r == 1.0 for r in ratios[:3])

    def test_front_blocks_protected(self):
        table = paper_latency_table("DeiT-T")
        ratios = ratios_for_latency_budget(table, 12, latency_limit=9.5,
                                           front_blocks=3)
        assert all(r == 1.0 for r in ratios[:3])
        assert table.model_latency(ratios) <= 9.5

    def test_infeasible_budget_raises(self):
        table = paper_latency_table("DeiT-T")
        with pytest.raises(ValueError):
            ratios_for_latency_budget(table, 12, latency_limit=1.0)


class TestLatencyFromStageCounts:
    def test_patch_ratio_convention(self):
        """Counts include CLS + package; the ratio must not.

        A packaged image keeping exactly half its 196 patches has
        count 98 + 2 = 100 and must look up ratio 0.5, not 100/197 --
        the same convention as ``PruningRecord.cumulative_keep`` and
        :func:`ratios_for_latency_budget`.
        """
        table = paper_latency_table("DeiT-T")
        # One selector before block 6 of 12: 6 dense + 6 pruned blocks.
        estimate = latency_from_stage_counts(
            table, 12, [6], [np.array([100])], num_patches=196, extra=2)
        expected = 6 * table.latency(1.0) + 6 * table.latency(0.5)
        assert estimate.shape == (1,)
        assert estimate[0] == pytest.approx(expected)

    def test_matches_scalar_lookup_per_block(self):
        table = paper_latency_table("DeiT-S")
        counts = [np.array([150, 100, 60]), np.array([80, 50, 30])]
        estimate = latency_from_stage_counts(table, 12, [3, 8], counts,
                                             num_patches=196, extra=2)
        for image in range(3):
            ratios = ([1.0] * 3
                      + [(counts[0][image] - 2) / 196] * 5
                      + [(counts[1][image] - 2) / 196] * 4)
            assert estimate[image] == pytest.approx(
                table.model_latency(ratios))

    def test_count_mismatch_raises(self):
        table = paper_latency_table("DeiT-T")
        with pytest.raises(ValueError):
            latency_from_stage_counts(table, 12, [3, 8],
                                      [np.array([100])], num_patches=196)

    def test_no_stages_raises(self):
        table = paper_latency_table("DeiT-T")
        with pytest.raises(ValueError):
            latency_from_stage_counts(table, 12, [], [], num_patches=196)

    def test_latency_batch_matches_scalar(self):
        table = paper_latency_table("DeiT-T")
        ratios = np.array([0.45, 0.55, 0.72, 1.0, 1.3])
        np.testing.assert_allclose(
            table.latency_batch(ratios),
            [table.latency(r) for r in ratios])


class TestLatencyForKeepRatios:
    def test_matches_cumulative_model_latency(self):
        table = paper_latency_table("DeiT-T")
        # Selectors at blocks 3 and 8 with per-selector ratios 0.8, 0.7:
        # blocks 0-2 dense, 3-7 at 0.8, 8-11 at 0.56 cumulative.
        estimate = latency_for_keep_ratios(table, 12, [3, 8], [0.8, 0.7])
        expected = table.model_latency([1.0] * 3 + [0.8] * 5 + [0.56] * 4)
        assert estimate == pytest.approx(expected)

    def test_no_selectors_is_dense(self):
        table = paper_latency_table("DeiT-T")
        assert latency_for_keep_ratios(table, 12, [], []) == pytest.approx(
            table.model_latency([1.0] * 12))

    def test_selector_before_block_zero(self):
        table = paper_latency_table("DeiT-T")
        estimate = latency_for_keep_ratios(table, 4, [0], [0.5])
        assert estimate == pytest.approx(table.model_latency([0.5] * 4))

    def test_ratio_count_mismatch_raises(self):
        table = paper_latency_table("DeiT-T")
        with pytest.raises(ValueError):
            latency_for_keep_ratios(table, 12, [3], [0.8, 0.7])
