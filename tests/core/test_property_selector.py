"""Property-based tests (hypothesis) for selector and packager invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import TokenSelector
from repro.nn.tensor import Tensor
from repro.quant import calibrate_minmax, dequantize, quantize


def token_batches(tokens=8, dim=12):
    return hnp.arrays(np.float64, (1, tokens, dim),
                      elements=st.floats(-4.0, 4.0, allow_nan=False))


@pytest.fixture(scope="module")
def selector():
    sel = TokenSelector(12, 3, rng=np.random.default_rng(11))
    sel.eval()
    return sel


class TestSelectorInvariants:
    @given(token_batches())
    @settings(max_examples=25, deadline=None)
    def test_scores_are_distributions(self, x):
        selector = TokenSelector(12, 3, rng=np.random.default_rng(11))
        selector.eval()
        scores, _ = selector.token_scores(Tensor(x))
        assert np.all(scores.data >= -1e-12)
        assert np.allclose(scores.data.sum(-1), 1.0, atol=1e-6)

    @given(token_batches())
    @settings(max_examples=25, deadline=None)
    def test_decision_binary_and_mask_respected(self, x):
        selector = TokenSelector(12, 3, rng=np.random.default_rng(11))
        selector.eval()
        incoming = np.ones((1, 8))
        incoming[0, ::2] = 0.0
        out = selector(Tensor(x), incoming_mask=incoming)
        assert set(np.unique(out.decision.data)).issubset({0.0, 1.0})
        assert np.all(out.decision.data[0, ::2] == 0.0)

    @given(token_batches())
    @settings(max_examples=25, deadline=None)
    def test_package_within_token_bounds(self, x):
        """Convex combination => package stays inside the per-dimension
        min/max envelope of the pruned tokens (or is 0 if none)."""
        selector = TokenSelector(12, 3, rng=np.random.default_rng(11))
        selector.eval()
        out = selector(Tensor(x))
        pruned = out.decision.data[0] < 0.5
        package = out.package.data[0, 0]
        if pruned.any():
            lo = x[0, pruned].min(axis=0) - 1e-6
            hi = x[0, pruned].max(axis=0) + 1e-6
            assert np.all(package >= lo) and np.all(package <= hi)
        else:
            assert np.allclose(package, 0.0, atol=1e-6)

    @given(token_batches())
    @settings(max_examples=20, deadline=None)
    def test_token_permutation_equivariance(self, x):
        """Permuting tokens permutes decisions identically: the
        classifier is per-token with permutation-invariant pooling."""
        selector = TokenSelector(12, 3, rng=np.random.default_rng(11))
        selector.eval()
        perm = np.random.default_rng(5).permutation(8)
        base = selector(Tensor(x)).keep_probs.data[0]
        permuted = selector(Tensor(x[:, perm])).keep_probs.data[0]
        assert np.allclose(permuted, base[perm], atol=1e-9)


class TestQuantizationInvariants:
    @given(hnp.arrays(np.float64, (32,),
                      elements=st.floats(-100.0, 100.0, allow_nan=False)))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_error_bound(self, x):
        params = calibrate_minmax(x)
        err = np.abs(dequantize(quantize(x, params), params) - x)
        assert err.max() <= params.scale / 2 + 1e-9

    @given(hnp.arrays(np.float64, (16,),
                      elements=st.floats(-10.0, 10.0, allow_nan=False)),
           st.integers(3, 12))
    @settings(max_examples=50, deadline=None)
    def test_quantized_values_on_grid(self, x, bits):
        params = calibrate_minmax(x, bits=bits)
        q = quantize(x, params)
        assert q.min() >= params.qmin
        assert q.max() <= params.qmax


class TestApproxInvariants:
    @given(hnp.arrays(np.float64, (4, 6),
                      elements=st.floats(-30.0, 30.0, allow_nan=False)))
    @settings(max_examples=50, deadline=None)
    def test_softmax_approx_sums_to_delta2(self, x):
        from repro.approx import softmax_approx
        out = softmax_approx(x)
        assert np.allclose(out.sum(-1), 0.5, atol=1e-9)
        assert np.all(out >= 0)

    @given(hnp.arrays(np.float64, (50,),
                      elements=st.floats(-50.0, 50.0, allow_nan=False)))
    @settings(max_examples=50, deadline=None)
    def test_gelu_derivative_regularized(self, x):
        from repro.approx import gelu_approx_derivative
        assert np.abs(gelu_approx_derivative(x, delta1=0.5)).max() < 1.0
