"""Unit tests for the HeatViT model wrapper (masked + gathered paths)."""

import numpy as np
import pytest

from repro import nn
from repro.core import HeatViT, PruningRecord
from repro.vit import model_gmacs


@pytest.fixture()
def heatvit(tiny_backbone, rng):
    return HeatViT(tiny_backbone, {1: 0.7, 2: 0.5}, rng=rng)


class TestConstruction:
    def test_selector_placement(self, heatvit):
        assert heatvit.selector_blocks == (1, 2)
        assert heatvit.keep_ratios == (0.7, 0.5)

    def test_out_of_range_block(self, tiny_backbone, rng):
        with pytest.raises(ValueError):
            HeatViT(tiny_backbone, {99: 0.5}, rng=rng)

    def test_set_keep_ratios(self, heatvit):
        heatvit.set_keep_ratios((0.9, 0.8))
        assert heatvit.keep_ratios == (0.9, 0.8)
        with pytest.raises(ValueError):
            heatvit.set_keep_ratios((0.9,))

    def test_selector_for_block(self, heatvit):
        assert heatvit.selector_for_block(2) is heatvit.selectors[1]


class TestMaskedForward:
    def test_logits_shape(self, heatvit, tiny_dataset):
        heatvit.eval()
        with nn.no_grad():
            logits = heatvit(tiny_dataset.images[:4])
        assert logits.shape == (4, 4)

    def test_record_contents(self, heatvit, tiny_dataset):
        heatvit.eval()
        record = PruningRecord()
        with nn.no_grad():
            heatvit(tiny_dataset.images[:4], record=record)
        assert len(record.decisions) == 2
        assert len(record.keep_fractions) == 2
        assert all(0.0 <= f <= 1.0 for f in record.keep_fractions)

    def test_mask_propagation_is_monotone(self, heatvit, tiny_dataset):
        """A token pruned at stage 1 must stay pruned at stage 2."""
        heatvit.eval()
        record = PruningRecord()
        with nn.no_grad():
            heatvit(tiny_dataset.images[:6], record=record)
        first = record.decisions[0].data
        second = record.decisions[1].data
        assert np.all(second <= first + 1e-12)

    def test_cumulative_keep_decreases(self, heatvit, tiny_dataset):
        heatvit.eval()
        record = PruningRecord()
        with nn.no_grad():
            heatvit(tiny_dataset.images[:6], record=record)
        assert record.cumulative_keep[1] <= record.cumulative_keep[0]


class TestGatheredForward:
    def test_matches_masked_eval(self, heatvit, tiny_dataset):
        """Deployment (gathered) semantics must produce the same logits
        as masked evaluation -- attention masking == token removal."""
        heatvit.eval()
        images = tiny_dataset.images[:4]
        with nn.no_grad():
            masked = heatvit(images).data
        gathered = heatvit.forward_pruned(images).data
        assert np.allclose(masked, gathered, atol=1e-6), (
            np.abs(masked - gathered).max())

    def test_adaptive_token_counts(self, heatvit, tiny_dataset):
        heatvit.eval()
        record = PruningRecord()
        heatvit.forward_pruned(tiny_dataset.images[:8], record=record)
        assert len(record.tokens_per_stage) == 2
        counts = record.tokens_per_stage[0]
        assert counts.shape == (8,)
        # Token counts can differ across images (image-adaptive).
        assert counts.max() <= heatvit.config.num_tokens + 1

    def test_measured_gmacs_below_dense(self, heatvit, tiny_dataset):
        per_image = heatvit.measured_gmacs(tiny_dataset.images[:4])
        dense = model_gmacs(heatvit.config)
        assert per_image.shape == (4,)
        # Untrained selectors may keep nearly all tokens; with the extra
        # package token + selector overhead an image can slightly exceed
        # the dense cost, but never by more than that overhead, and the
        # average must save compute.
        assert np.all(per_image < dense * 1.15)
        assert per_image.mean() < dense

    def test_accuracy_helper(self, heatvit, tiny_dataset):
        acc_masked = heatvit.accuracy(tiny_dataset.images[:8],
                                      tiny_dataset.labels[:8])
        acc_pruned = heatvit.accuracy(tiny_dataset.images[:8],
                                      tiny_dataset.labels[:8], pruned=True)
        assert acc_masked == acc_pruned


class TestNoPackager:
    def test_discard_mode(self, tiny_backbone, tiny_dataset, rng):
        model = HeatViT(tiny_backbone, {1: 0.6}, rng=rng,
                        use_packager=False)
        model.eval()
        images = tiny_dataset.images[:4]
        with nn.no_grad():
            masked = model(images).data
        gathered = model.forward_pruned(images).data
        assert np.allclose(masked, gathered, atol=1e-6)

    def test_packager_changes_logits(self, tiny_backbone, tiny_dataset,
                                     rng):
        state = tiny_backbone.state_dict()
        with_pkg = HeatViT(tiny_backbone, {1: 0.5},
                           rng=np.random.default_rng(3))
        without = HeatViT(tiny_backbone, {1: 0.5},
                          rng=np.random.default_rng(3), use_packager=False)
        without.load_state_dict(with_pkg.state_dict())
        with_pkg.eval()
        without.eval()
        images = tiny_dataset.images[:2]
        a = with_pkg.forward_pruned(images).data
        b = without.forward_pruned(images).data
        tiny_backbone.load_state_dict(state)
        assert not np.allclose(a, b)
