"""Tests for the FPGA resource model (Table III + engine resources)."""

import pytest

from repro.hardware import (PAPER_TABLE3, ResourceCount, buffer_brams,
                            gemm_engine_resources, nonlinear_unit_table,
                            selector_control)


class TestResourceCount:
    def test_addition(self):
        total = ResourceCount(1, 2, 3) + ResourceCount(10, 20, 30)
        assert (total.ff, total.lut, total.dsp) == (11, 22, 33)

    def test_scaling(self):
        scaled = ResourceCount(10, 10, 10).scaled(2.5)
        assert scaled.ff == 25


class TestNonlinearUnits:
    """Our analytic Table III vs the paper's measured values."""

    def test_approx_massively_cheaper_gelu(self):
        table = nonlinear_unit_table()
        approx, orig = table["GELU"]["approx"], table["GELU"]["orig"]
        # Paper: 35x-572x improvement for GELU.
        assert orig.lut / max(approx.lut, 1) > 100
        assert orig.ff / max(approx.ff, 1) > 100
        assert orig.dsp / max(approx.dsp, 1) > 20

    @pytest.mark.parametrize("fn", ["GELU", "Sigmoid", "Softmax"])
    def test_approx_cheaper_everywhere(self, fn):
        table = nonlinear_unit_table()
        approx, orig = table[fn]["approx"], table[fn]["orig"]
        assert approx.lut < orig.lut
        assert approx.ff < orig.ff
        assert approx.dsp <= orig.dsp

    @pytest.mark.parametrize("fn,kind", [
        (fn, kind) for fn in ("GELU", "Sigmoid", "Softmax")
        for kind in ("approx", "orig")])
    def test_within_2x_of_paper(self, fn, kind):
        """Analytic estimates land within 2x of the measured Table III
        (exact HLS synthesis is tool-version dependent)."""
        ours = nonlinear_unit_table()[fn][kind]
        paper = PAPER_TABLE3[fn][kind]
        for attr in ("ff", "lut"):
            measured = getattr(paper, attr)
            estimated = getattr(ours, attr)
            assert estimated == pytest.approx(measured, rel=1.0), (
                f"{fn}/{kind}/{attr}: {estimated} vs paper {measured}")

    def test_sigmoid_uses_no_dsp(self):
        assert nonlinear_unit_table()["Sigmoid"]["approx"].dsp == 0


class TestEngineResources:
    def test_8bit_macs_cheaper_than_16bit(self):
        r16 = gemm_engine_resources(8, 32, 3, 16, False)
        r8 = gemm_engine_resources(8, 32, 3, 8, True)
        assert r8.dsp < r16.dsp

    def test_dsp_scales_with_array(self):
        small = gemm_engine_resources(8, 16, 3, 16, False)
        large = gemm_engine_resources(8, 32, 3, 16, False)
        assert large.dsp - small.dsp == 2 * 8 * 16 * 3   # 2 DSP / 16b MAC

    def test_unsupported_bitwidth(self):
        with pytest.raises(ValueError):
            gemm_engine_resources(8, 8, 1, 12, False)


class TestBuffers:
    def test_bram_grows_with_heads(self):
        """Table VI: more heads -> more BRAM (per-head residency)."""
        kwargs = dict(max_tokens=197, head_dim=64, ti=8, bitwidth=16,
                      mlp_hidden_dim=1536)
        b3 = buffer_brams(num_heads=3, th=3, to=32, **kwargs)
        b6 = buffer_brams(num_heads=6, th=6, to=16, **kwargs)
        b12 = buffer_brams(num_heads=12, th=12, to=8, **kwargs)
        assert b3 < b6 < b12

    def test_8bit_smaller_than_16bit(self):
        kwargs = dict(max_tokens=197, head_dim=64, num_heads=6, th=6,
                      ti=8, to=16, mlp_hidden_dim=1536)
        assert (buffer_brams(bitwidth=8, **kwargs)
                <= buffer_brams(bitwidth=16, **kwargs))


class TestSelectorControl:
    def test_overhead_is_small(self):
        """The Fig. 9 control flow must be tiny next to the engine."""
        extra, extra_bram = selector_control(num_heads=6)
        engine = gemm_engine_resources(8, 40, 6, 8, True)
        assert extra.lut / engine.lut < 0.15
        assert extra.dsp <= 5
        assert extra_bram < 10

    def test_grows_mildly_with_heads(self):
        small, _ = selector_control(num_heads=3)
        large, _ = selector_control(num_heads=12)
        assert small.lut < large.lut < small.lut * 2
