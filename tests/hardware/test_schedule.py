"""Tests for the per-layer execution trace."""

import pytest

from repro.hardware import (ViTAcceleratorSim, baseline_design,
                            format_trace, heatvit_design, trace_schedule,
                            utilization_summary)
from repro.vit import DEIT_TINY, StagePlan


@pytest.fixture(scope="module")
def dense_trace():
    return trace_schedule(DEIT_TINY, baseline_design(DEIT_TINY))


@pytest.fixture(scope="module")
def pruned_trace():
    plan = StagePlan.canonical(12, (0.7, 0.39, 0.21))
    return trace_schedule(DEIT_TINY, heatvit_design(DEIT_TINY),
                          stage_plan=plan)


class TestTrace:
    def test_layer_count_dense(self, dense_trace):
        # embed + 12 blocks x 6 GEMMs + head
        assert len(dense_trace) == 1 + 12 * 6 + 1

    def test_layer_count_pruned(self, pruned_trace):
        # + 3 selectors x 5 GEMMs
        assert len(pruned_trace) == 1 + 12 * 6 + 3 * 5 + 1

    def test_timestamps_monotone(self, dense_trace):
        starts = [e.start_cycle for e in dense_trace]
        assert all(b > a for a, b in zip(starts, starts[1:]))
        assert dense_trace[0].start_cycle == 0

    def test_total_matches_simulator_gemm_cycles(self, dense_trace):
        sim = ViTAcceleratorSim(DEIT_TINY, baseline_design(DEIT_TINY))
        report = sim.simulate()
        traced = sum(e.cycles for e in dense_trace)
        assert traced == report.cycles_by_kind["gemm"]

    def test_pruned_blocks_use_fewer_tokens(self, pruned_trace):
        front = [e for e in pruned_trace if e.block == 0
                 and e.layer == "qkv"][0]
        back = [e for e in pruned_trace if e.block == 11
                and e.layer == "qkv"][0]
        assert back.tokens < front.tokens
        assert back.cycles < front.cycles

    def test_efficiency_bounds(self, dense_trace):
        assert all(0.0 < e.efficiency <= 1.0 for e in dense_trace)

    def test_bound_labels(self, dense_trace):
        assert set(e.bound for e in dense_trace) <= {"compute", "memory"}


class TestSummaryAndFormat:
    def test_summary_fields(self, dense_trace):
        summary = utilization_summary(dense_trace)
        assert summary["total_cycles"] > 0
        assert 0.0 < summary["weighted_efficiency"] <= 1.0
        assert 0.0 <= summary["memory_bound_fraction"] <= 1.0
        assert "qkv" in summary["by_layer"]
        assert "fc1" in summary["by_layer"]

    def test_ffn_dominates_cycles(self, dense_trace):
        """Consistency with Table II: FFN ~2/3 of block compute."""
        summary = utilization_summary(dense_trace)
        ffn = (summary["by_layer"]["fc1"]["macs"]
               + summary["by_layer"]["fc2"]["macs"])
        assert ffn / summary["total_macs"] > 0.5

    def test_format_trace(self, dense_trace):
        text = format_trace(dense_trace, limit=5)
        lines = text.splitlines()
        assert len(lines) == 6      # header + 5 rows
        assert "patch_embed" in text

    def test_selector_layers_present_in_pruned(self, pruned_trace):
        names = {e.layer for e in pruned_trace}
        assert "sel_feature" in names
        assert "sel_attn" in names
