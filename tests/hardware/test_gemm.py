"""Tests for the tiled GEMM engine cycle model."""

import math

import pytest

from repro.hardware import GemmShape, TiledGemmEngine, ZCU102


@pytest.fixture()
def engine():
    return TiledGemmEngine(ti=8, to=32, th=3, bitwidth=16, device=ZCU102)


class TestGemmShape:
    def test_macs(self):
        shape = GemmShape(rows=10, depth=20, cols=30)
        assert shape.macs == 6000

    def test_grouped_macs(self):
        shape = GemmShape(rows=10, depth=20, cols=30, groups=3)
        assert shape.macs == 18000

    def test_operand_bytes(self):
        shape = GemmShape(rows=2, depth=4, cols=3)
        assert shape.operand_bytes(16) == (8 + 12 + 6) * 2


class TestCycleModel:
    def test_exact_tile_counts(self, engine):
        # depth 24 / (ti*th = 24) = 1 reduction tile; cols 64 / 32 = 2.
        shape = GemmShape(rows=10, depth=24, cols=64)
        assert engine.compute_cycles(shape) == 1 * 2 * 10

    def test_ceil_padding_waste(self, engine):
        # cols=33 needs 2 output tiles just like 64.
        even = engine.compute_cycles(GemmShape(10, 24, 32))
        ragged = engine.compute_cycles(GemmShape(10, 24, 33))
        assert ragged == 2 * even

    def test_grouped_execution(self, engine):
        # 3 head groups run concurrently on th=3.
        grouped = GemmShape(rows=10, depth=8, cols=32, groups=3)
        assert engine.compute_cycles(grouped) == math.ceil(3 / 3) * 10
        six = GemmShape(rows=10, depth=8, cols=32, groups=6)
        assert engine.compute_cycles(six) == 2 * 10

    def test_latency_includes_pipeline_fill(self, engine):
        shape = GemmShape(rows=10, depth=24, cols=32)
        bound = max(engine.compute_cycles(shape),
                    engine.transfer_cycles(shape))
        latency = engine.latency_cycles(shape)
        assert latency == bound + (engine.tile_swaps(shape)
                                   * engine.PIPELINE_FILL)

    def test_transfer_bound_layers(self):
        """A tall skinny GEMM with huge weights becomes DDR bound."""
        engine = TiledGemmEngine(ti=64, to=64, th=4, bitwidth=16,
                                 device=ZCU102)
        shape = GemmShape(rows=1, depth=4096, cols=4096)
        assert engine.transfer_cycles(shape) > engine.compute_cycles(shape)
        assert engine.latency_cycles(shape) >= engine.transfer_cycles(shape)

    def test_efficiency_bounded(self, engine):
        for shape in (GemmShape(197, 192, 576), GemmShape(197, 64, 197,
                                                          groups=3)):
            assert 0.0 < engine.efficiency(shape) <= 1.0

    def test_macs_per_cycle(self, engine):
        assert engine.macs_per_cycle == 8 * 32 * 3

    def test_invalid_tiles(self):
        with pytest.raises(ValueError):
            TiledGemmEngine(0, 8, 1, 16, ZCU102)

    def test_more_parallelism_never_slower(self):
        small = TiledGemmEngine(8, 16, 3, 16, ZCU102)
        large = TiledGemmEngine(8, 64, 3, 16, ZCU102)
        shape = GemmShape(197, 192, 768)
        assert (large.compute_cycles(shape)
                <= small.compute_cycles(shape))
