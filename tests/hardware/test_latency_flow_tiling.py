"""Tests for the latency table, token-selection flow, tiling search,
and platform comparison."""

import numpy as np
import pytest

from repro.core import TokenSelector
from repro.hardware import (PAPER_TABLE4, TokenSelectionFlow,
                            block_latency_ms, build_latency_table,
                            compare_platforms, search_tiling,
                            speedup_breakdown, TX2_CPU, TX2_GPU)
from repro.nn.tensor import Tensor
from repro.vit import DEIT_SMALL, DEIT_TINY, StagePlan


class TestLatencyTable:
    def test_monotone_in_keep_ratio(self):
        table = build_latency_table(DEIT_TINY)
        lats = [table.latency(r) for r in (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)]
        assert all(a < b for a, b in zip(lats, lats[1:]))

    def test_tiny_configs_monotonized(self):
        """At very small token counts the tiling quantization can invert
        neighbouring ratios; the builder must still return a valid
        (non-decreasing) table for any config -- serving sessions build
        one per served config by default."""
        from repro.vit import ViTConfig

        config = ViTConfig(name="micro", image_size=8, patch_size=4,
                           embed_dim=24, depth=2, num_heads=3,
                           num_classes=4)
        table = build_latency_table(config)      # must not raise
        lats = [table.latency(r) for r in (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)]
        assert all(a <= b for a, b in zip(lats, lats[1:]))

    @pytest.mark.parametrize("model,config", [
        ("DeiT-T", DEIT_TINY), ("DeiT-S", DEIT_SMALL)])
    def test_within_50pct_of_paper_table4(self, model, config):
        """Simulated per-block latency tracks the measured Table IV."""
        table = build_latency_table(config)
        for ratio, paper_ms in PAPER_TABLE4[model].items():
            ours = table.latency(ratio)
            assert ours == pytest.approx(paper_ms, rel=0.5), (
                f"{model} @ {ratio}: {ours:.3f} vs paper {paper_ms}")

    def test_relative_savings_match_paper(self):
        """Latency(0.5)/latency(1.0) ~= 0.61 for DeiT-T (paper:
        0.636/1.034 = 0.615)."""
        table = build_latency_table(DEIT_TINY)
        ratio = table.latency(0.5) / table.latency(1.0)
        paper = 0.636 / 1.034
        assert ratio == pytest.approx(paper, abs=0.12)

    def test_selector_adds_small_latency(self):
        plain = block_latency_ms(DEIT_TINY, 0.7)
        with_sel = block_latency_ms(DEIT_TINY, 0.7, with_selector=True)
        assert plain < with_sel < plain * 1.2


class TestTokenSelectionFlow:
    def test_matches_algorithmic_selector(self, rng):
        """The hardware flow must reproduce the TokenSelector's
        keep/prune decisions given the same classifier scores."""
        selector = TokenSelector(24, 3, rng=rng)
        selector.eval()
        tokens = Tensor(rng.normal(size=(1, 12, 24)))
        out = selector(tokens)
        probs = out.keep_probs.data[0]
        # Feed the flow the log-probabilities (softmax is idempotent on
        # renormalized logs).
        flow = TokenSelectionFlow(use_exp_approx=False)
        result = flow.run(tokens.data[0], np.log(probs[:, 0] + 1e-12),
                          np.log(probs[:, 1] + 1e-12))
        assert np.array_equal(result.keep_flags,
                              out.decision.data[0].astype(bool))

    def test_exp_approx_rarely_flips_decisions(self, rng):
        logits_keep = rng.normal(size=200)
        logits_prune = rng.normal(size=200)
        tokens = rng.normal(size=(200, 8))
        exact = TokenSelectionFlow(use_exp_approx=False).run(
            tokens, logits_keep, logits_prune)
        approx = TokenSelectionFlow(use_exp_approx=True).run(
            tokens, logits_keep, logits_prune)
        agreement = (exact.keep_flags == approx.keep_flags).mean()
        assert agreement > 0.97

    def test_output_dense_and_packaged(self, rng):
        flow = TokenSelectionFlow()
        result = flow.run(rng.normal(size=(10, 4)), rng.normal(size=10),
                          rng.normal(size=10))
        kept = result.keep_flags.sum()
        if kept < 10:
            assert result.output_tokens.shape == (kept + 1, 4)
        assert result.cycles == 3 * 10 + 64

    def test_never_prunes_everything(self):
        flow = TokenSelectionFlow()
        result = flow.run(np.ones((5, 3)), np.full(5, -10.0),
                          np.full(5, 10.0))
        assert result.keep_flags.sum() == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            TokenSelectionFlow(threshold=0.0)

    def test_input_validation(self, rng):
        flow = TokenSelectionFlow()
        with pytest.raises(ValueError):
            flow.run(rng.normal(size=(5,)), rng.normal(size=5),
                     rng.normal(size=5))
        with pytest.raises(ValueError):
            flow.run(rng.normal(size=(5, 2)), rng.normal(size=4),
                     rng.normal(size=5))


class TestTilingSearch:
    def test_returns_sorted_feasible_designs(self):
        choices = search_tiling(DEIT_TINY, bitwidth=8, top_k=4)
        lats = [c.latency_ms for c in choices]
        assert lats == sorted(lats)
        for choice in choices:
            assert choice.utilization["dsp"] <= 0.85
            assert choice.th == DEIT_TINY.num_heads

    def test_infeasible_budget_raises(self):
        with pytest.raises(ValueError):
            search_tiling(DEIT_TINY, bitwidth=16, max_dsp_fraction=0.001)


class TestPlatformComparison:
    def test_fig13_orderings(self):
        plan = StagePlan.canonical(12, (0.70, 0.39, 0.21))
        results = {(r.platform, r.pruned): r
                   for r in compare_platforms(DEIT_TINY, plan)}
        cpu = results[("TX2-CPU", False)]
        cpu_p = results[("TX2-CPU", True)]
        gpu = results[("TX2-GPU", False)]
        fpga = results[("FPGA-HeatViT", True)]
        # Normalization anchor.
        assert cpu.speedup_vs_cpu_dense == pytest.approx(1.0)
        # Pruning helps the CPU too (paper: 1.78x-2.67x).
        assert 1.4 < cpu_p.speedup_vs_cpu_dense < 3.0
        # GPU is several hundred times the CPU (paper: ~373x-870x range
        # for the various baselines).
        assert gpu.speedup_vs_cpu_dense > 100
        # FPGA HeatViT beats everything (paper: 1827x-3013x).
        assert fpga.speedup_vs_cpu_dense > gpu.speedup_vs_cpu_dense

    def test_fpga_energy_efficiency_wins(self):
        plan = StagePlan.canonical(12, (0.70, 0.39, 0.21))
        results = {(r.platform, r.pruned): r
                   for r in compare_platforms(DEIT_TINY, plan)}
        fpga = results[("FPGA-HeatViT", True)]
        gpu_p = results[("TX2-GPU", True)]
        cpu_p = results[("TX2-CPU", True)]
        # Paper: 3.0x-4.7x over the GPU, 242x-719x over the CPU.
        assert 1.5 < fpga.energy_efficiency / gpu_p.energy_efficiency < 8
        assert fpga.energy_efficiency / cpu_p.energy_efficiency > 50

    def test_breakdown_multiplies_to_total(self):
        plan = StagePlan.canonical(12, (0.70, 0.39, 0.21))
        breakdown = speedup_breakdown(DEIT_TINY, plan)
        assert breakdown["total"] == pytest.approx(
            breakdown["pruning"] * breakdown["quantization"], rel=1e-9)

    def test_processor_spec_helpers(self):
        assert TX2_CPU.latency_ms(1.3) == pytest.approx(
            1.3 / TX2_CPU.effective_gmacs * 1000)
        assert TX2_GPU.fps(1.3) > TX2_CPU.fps(1.3)
