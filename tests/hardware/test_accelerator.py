"""Tests for the end-to-end accelerator simulator (Table VI shapes)."""

import numpy as np
import pytest

from repro.hardware import (ViTAcceleratorSim, ZCU102, baseline_design,
                            heatvit_design)
from repro.vit import (DEIT_BASE, DEIT_SMALL, DEIT_TINY, LVVIT_SMALL,
                       StagePlan)

PLAN = StagePlan.canonical(12, (0.70, 0.39, 0.21))


@pytest.fixture(scope="module")
def reports():
    out = {}
    for config in (DEIT_TINY, DEIT_SMALL, DEIT_BASE):
        base = ViTAcceleratorSim(config, baseline_design(config)).simulate()
        sim8 = ViTAcceleratorSim(config, heatvit_design(config))
        dense8 = sim8.simulate()
        plan = StagePlan.canonical(config.depth, (0.70, 0.39, 0.21))
        pruned = sim8.simulate(plan)
        out[config.name] = (base, dense8, pruned)
    return out


class TestDesigns:
    def test_th_matches_heads(self):
        assert baseline_design(DEIT_TINY).th == 3
        assert baseline_design(DEIT_BASE).th == 12
        assert heatvit_design(DEIT_SMALL).th == 6

    def test_same_total_parallelism_across_models(self):
        """'With the same total degree of computation parallelism...'"""
        sizes = {baseline_design(c).macs_per_cycle
                 for c in (DEIT_TINY, DEIT_SMALL, DEIT_BASE)}
        assert len(sizes) == 1

    def test_stage_plan_requires_selector(self):
        sim = ViTAcceleratorSim(DEIT_TINY, baseline_design(DEIT_TINY))
        with pytest.raises(ValueError):
            sim.simulate(PLAN)


class TestTable6Shapes:
    def test_fps_ordering_across_models(self, reports):
        """Smaller models run faster, in every configuration."""
        for column in range(3):
            fps = [reports[name][column].fps
                   for name in ("DeiT-T", "DeiT-S", "DeiT-B")]
            assert fps[0] > fps[1] > fps[2]

    def test_total_speedup_in_paper_band(self, reports):
        """Paper: 3.46x (DeiT-T) to 4.89x (DeiT-B) vs the baseline.
        The simulator must land in the 2.5x-5.5x band with speedup
        growing with model size."""
        speedups = []
        for name in ("DeiT-T", "DeiT-S", "DeiT-B"):
            base, _, pruned = reports[name]
            speedups.append(pruned.speedup_over(base))
        assert all(2.5 < s < 5.5 for s in speedups)
        assert speedups[0] < speedups[-1]

    def test_quantization_speedup_band(self, reports):
        """8-bit alone gives ~1.9x (paper: 1.90x)."""
        for name in ("DeiT-T", "DeiT-S"):
            base, dense8, _ = reports[name]
            assert 1.5 < dense8.speedup_over(base) < 2.6

    def test_pruning_speedup_band(self, reports):
        """Token pruning alone gives 1.8x-2.6x (paper: 1.82x-2.58x)."""
        for name in ("DeiT-T", "DeiT-S", "DeiT-B"):
            _, dense8, pruned = reports[name]
            ratio = dense8.latency_ms / pruned.latency_ms
            assert 1.4 < ratio < 2.8

    def test_selector_overhead_points(self, reports):
        """Paper: +8-11 DSP points, +5-8 LUT points of utilization."""
        for name in ("DeiT-T", "DeiT-S", "DeiT-B"):
            base, _, pruned = reports[name]
            dsp_delta = (pruned.utilization["dsp"]
                         - base.utilization["dsp"]) * 100
            lut_delta = (pruned.utilization["lut"]
                         - base.utilization["lut"]) * 100
            assert 4 < dsp_delta < 20
            assert 2 < lut_delta < 15

    def test_power_band_and_ordering(self, reports):
        """Paper powers: 8.0-11.4 W, growing with model size."""
        powers = [reports[name][2].power_w
                  for name in ("DeiT-T", "DeiT-S", "DeiT-B")]
        assert all(5.0 < p < 13.0 for p in powers)
        assert powers[0] < powers[2]

    def test_energy_efficiency_ordering(self, reports):
        """FPS/W decreases with model size (Table VI last column)."""
        eff = [reports[name][2].energy_efficiency
               for name in ("DeiT-T", "DeiT-S", "DeiT-B")]
        assert eff[0] > eff[1] > eff[2]

    def test_all_designs_fit_device(self, reports):
        for name in reports:
            for report in reports[name]:
                assert all(v <= 1.0 for v in report.utilization.values()), (
                    name, report.utilization)

    def test_lvvit_slower_than_deit_s_by_depth(self):
        """LV-ViT-S = DeiT-S dims at depth 16 -> ~12/16 of the FPS."""
        s = ViTAcceleratorSim(DEIT_SMALL,
                              baseline_design(DEIT_SMALL)).simulate()
        lv = ViTAcceleratorSim(LVVIT_SMALL,
                               baseline_design(LVVIT_SMALL)).simulate()
        assert lv.fps / s.fps == pytest.approx(12 / 16, abs=0.05)


class TestLatencyDecomposition:
    def test_cycle_kinds_present(self, reports):
        base, _, pruned = reports["DeiT-T"]
        assert set(base.cycles_by_kind) == {"gemm", "nonlinear",
                                            "selector_flow"}
        assert base.cycles_by_kind["selector_flow"] == 0
        assert pruned.cycles_by_kind["selector_flow"] > 0

    def test_gemm_dominates(self, reports):
        base, _, _ = reports["DeiT-S"]
        kinds = base.cycles_by_kind
        assert kinds["gemm"] > 0.8 * sum(kinds.values())
