"""Integration tests: the full HeatViT pipeline end to end.

backbone training -> selector insertion -> latency-aware fine-tuning ->
quantization + approximation -> FPGA deployment report.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import (HeatViT, PruningRecord, TrainConfig,
                        train_backbone, train_heatvit)
from repro.data import (SyntheticConfig, generate_dataset,
                        patch_object_fraction)
from repro.hardware import ViTAcceleratorSim, heatvit_design
from repro.quant import quantize_model
from repro.vit import StagePlan, VisionTransformer, ViTConfig


CONFIG = ViTConfig(name="integration", image_size=16, patch_size=4,
                   embed_dim=24, depth=4, num_heads=3, num_classes=4)


@pytest.fixture(scope="module")
def trained():
    """A backbone trained well above chance on the synthetic task."""
    rng = np.random.default_rng(100)
    data = generate_dataset(
        SyntheticConfig(image_size=16, num_classes=4, noise_std=0.08,
                        object_scale_range=(0.3, 0.65),
                        center_jitter=0.3),
        360, rng)
    train, val = data.split(train_fraction=0.85,
                            rng=np.random.default_rng(0))
    model = VisionTransformer(CONFIG, rng=np.random.default_rng(1))
    config = TrainConfig(epochs=40, batch_size=32, lr=3e-3,
                         weight_decay=0.01, seed=0)
    train_backbone(model, train.images, train.labels, config)
    model.eval()
    return model, train, val


class TestBackboneTraining:
    def test_above_chance(self, trained):
        model, _, val = trained
        accuracy = model.accuracy(val.images, val.labels)
        assert accuracy > 0.5, f"accuracy {accuracy} not above chance 0.25"


class TestHeatViTFineTuning:
    def test_pruned_model_keeps_most_accuracy(self, trained):
        backbone, train, val = trained
        baseline = backbone.accuracy(val.images, val.labels)
        state = backbone.state_dict()
        model = HeatViT(backbone, {1: 0.75, 2: 0.5},
                        rng=np.random.default_rng(2))
        config = TrainConfig(epochs=6, batch_size=32, lr=2e-3,
                             lambda_distill=0.0, lambda_ratio=2.0,
                             lambda_confidence=4.0, seed=1)
        train_heatvit(model, train.images, train.labels, config)
        pruned_acc = model.accuracy(val.images, val.labels, pruned=True)
        backbone.load_state_dict(state)
        assert pruned_acc > baseline - 0.25

    def test_selector_prefers_object_tokens(self, trained):
        """After fine-tuning, kept tokens should overlap the object more
        than pruned tokens do: the selector finds informative tokens."""
        backbone, train, val = trained
        state = backbone.state_dict()
        model = HeatViT(backbone, {1: 0.5}, rng=np.random.default_rng(3))
        config = TrainConfig(epochs=8, batch_size=32, lr=2e-3,
                             lambda_distill=0.0, lambda_ratio=2.0,
                             lambda_confidence=4.0, seed=2)
        train_heatvit(model, train.images, train.labels, config)
        model.eval()
        record = PruningRecord()
        with nn.no_grad():
            model(val.images[:48], record=record)
        decisions = record.decisions[0].data       # (B, N)
        coverage = patch_object_fraction(val.masks[:48], CONFIG.patch_size)
        kept_cov = (coverage * decisions).sum() / decisions.sum()
        pruned = 1.0 - decisions
        pruned_cov = (coverage * pruned).sum() / max(pruned.sum(), 1.0)
        backbone.load_state_dict(state)
        assert kept_cov > pruned_cov


class TestDeployment:
    def test_quantized_pruned_model_runs(self, trained):
        backbone, _, val = trained
        # Quantization surgery is destructive -- work on a fresh copy so
        # the shared fixture backbone stays intact.
        copy = VisionTransformer(CONFIG, rng=np.random.default_rng(9))
        copy.load_state_dict(backbone.state_dict())
        copy.eval()
        model = HeatViT(copy, {2: 0.6}, rng=np.random.default_rng(4))
        model.eval()
        float_acc = model.accuracy(val.images[:32], val.labels[:32],
                                   pruned=True)
        quantize_model(model, bits=8, approx_nonlinear=True, delta1=1.0)
        quant_acc = model.accuracy(val.images[:32], val.labels[:32],
                                   pruned=True)
        assert quant_acc > float_acc - 0.2

    def test_hardware_report_for_pruned_model(self):
        """Measured keep ratios feed straight into the accelerator
        simulator.  At paper scale (196 patches) pruning must win; on
        toy 16-patch models selector overhead can dominate, which is
        exactly why the paper evaluates on 224x224 inputs."""
        from repro.vit import DEIT_TINY
        plan = StagePlan.canonical(DEIT_TINY.depth, (0.75, 0.5, 0.4))
        sim = ViTAcceleratorSim(DEIT_TINY, heatvit_design(DEIT_TINY))
        dense = sim.simulate()
        pruned = sim.simulate(plan)
        assert pruned.fps > dense.fps
        assert pruned.power_w == dense.power_w   # same static design
