"""Consistency of the committed benchmark JSON artifacts.

The BENCH_*.json files are the machine-readable perf trajectory; CI
uploads them and humans quote them.  Every recorded gate number must
travel with the threshold and reference that judged it, and the pair
must actually be consistent -- a recorded ``top1_agreement_vs_f64:
0.9375`` next to a documented 0.95 gate reads as a failure unless the
file says which gate applied.
"""

import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


def load(name):
    path = ROOT / name
    if not path.exists():
        pytest.skip(f"{name} not present (bench not run here)")
    with open(path) as handle:
        return json.load(handle)


class TestEngineBenchJson:
    def test_quant_gate_records_its_threshold_and_passes(self):
        gate = load("BENCH_engine.json")["quant_gate"]
        assert gate["top1_reference"] == "fastpath-f64"
        assert gate["top1_threshold"] == pytest.approx(0.90)
        assert gate["top1_agreement_vs_f64"] >= gate["top1_threshold"]
        assert gate["top1_gate_passed"] is True

    def test_int8_backend_records_its_own_gate(self):
        """The per-backend agreement is a *different* gate (int8-f32 vs
        its int8-f64 twin, 0.95) than the dense-shape quant_gate (vs
        the float reference, 0.90) -- each number carries its own."""
        entry = load("BENCH_engine.json")["backends"]["int8-f32"]
        assert entry["top1_reference"] == "int8-f64"
        assert entry["top1_threshold"] == pytest.approx(0.95)
        assert entry["top1_agreement_vs_f64"] >= entry["top1_threshold"]
        assert entry["top1_gate_passed"] is True

    def test_learned_vs_static_section_shape(self):
        section = load("BENCH_engine.json")["learned_vs_static"]
        assert section["static_mape"] >= 0.0
        assert section["learned_mape"] >= 0.0
        assert len(section["per_flush"]) == section["eval_submits"]
        for flush in section["per_flush"]:
            assert flush["measured_ms"] > 0.0
        plan = section["bucket_plan"]
        assert plan["identical"] == (plan["static_plan"]
                                     == plan["learned_plan"])
        assert section["coefficients"]["batch_confident"] is True


class TestSchedulerBenchJson:
    def test_learned_mape_gate_holds(self):
        """The CI gate's invariant, re-asserted on the committed file:
        the learned model predicts measured flush latency at least as
        well as the simulator-calibrated static table."""
        section = load("BENCH_scheduler.json")["learned_vs_static"]
        assert section["learned_mape"] <= section["static_mape"]
        assert len(section["per_flush"]) == section["eval_bursts"]
        throughput = section["throughput"]
        assert throughput["learned_requests_per_s"] > 0.0
        assert throughput["static_requests_per_s"] > 0.0
        assert section["coefficients"]["batch_confident"] is True
