"""Tests for linear CKA (the Fig. 6 measurement)."""

import numpy as np
import pytest

from repro.vit import cls_token_cka_profile, linear_cka


class TestLinearCKA:
    def test_self_similarity_is_one(self, rng):
        x = rng.normal(size=(20, 8))
        assert linear_cka(x, x) == pytest.approx(1.0)

    def test_orthogonal_invariance(self, rng):
        x = rng.normal(size=(30, 6))
        q, _ = np.linalg.qr(rng.normal(size=(6, 6)))
        assert linear_cka(x, x @ q) == pytest.approx(1.0, abs=1e-9)

    def test_scale_invariance(self, rng):
        x = rng.normal(size=(15, 4))
        assert linear_cka(x, 3.7 * x) == pytest.approx(1.0)

    def test_range(self, rng):
        x = rng.normal(size=(25, 5))
        y = rng.normal(size=(25, 7))
        value = linear_cka(x, y)
        assert 0.0 <= value <= 1.0

    def test_independent_features_low(self, rng):
        x = rng.normal(size=(200, 3))
        y = rng.normal(size=(200, 3))
        assert linear_cka(x, y) < 0.3

    def test_zero_features(self):
        x = np.zeros((10, 4))
        y = np.ones((10, 4))
        assert linear_cka(x, y) == 0.0

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            linear_cka(rng.normal(size=(5,)), rng.normal(size=(5, 2)))
        with pytest.raises(ValueError):
            linear_cka(rng.normal(size=(5, 2)), rng.normal(size=(6, 2)))


class TestCKAProfile:
    def test_profile_covers_all_blocks(self, tiny_backbone, tiny_dataset):
        profile = cls_token_cka_profile(tiny_backbone,
                                        tiny_dataset.images[:16])
        assert set(profile) == set(range(tiny_backbone.config.depth))
        assert all(0.0 <= v <= 1.0 for v in profile.values())

    def test_last_block_most_similar(self, tiny_backbone, tiny_dataset):
        """Fig. 6's qualitative claim: similarity to the final CLS token
        grows with depth (weak front, strong back)."""
        profile = cls_token_cka_profile(tiny_backbone,
                                        tiny_dataset.images[:24])
        depth = tiny_backbone.config.depth
        assert profile[depth - 1] >= profile[0]
