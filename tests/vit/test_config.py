"""Unit tests for ViT configurations."""

import pytest

from repro.vit import (DEIT_BASE, DEIT_SMALL, DEIT_TINY, LVVIT_MEDIUM,
                       LVVIT_SMALL, PAPER_BACKBONES, ViTConfig, small_config)


class TestPaperBackbones:
    """Table V of the paper: heads / embed dim / depth per backbone."""

    @pytest.mark.parametrize("config,heads,dim,depth", [
        (DEIT_TINY, 3, 192, 12),
        (DEIT_SMALL, 6, 384, 12),
        (DEIT_BASE, 12, 768, 12),
        (LVVIT_SMALL, 6, 384, 16),
        (LVVIT_MEDIUM, 8, 512, 20),
    ])
    def test_dimensions(self, config, heads, dim, depth):
        assert config.num_heads == heads
        assert config.embed_dim == dim
        assert config.depth == depth

    def test_token_count_224_16(self):
        assert DEIT_TINY.num_patches == 196
        assert DEIT_TINY.num_tokens == 197

    def test_head_dim(self):
        assert DEIT_TINY.head_dim == 64
        assert DEIT_BASE.head_dim == 64

    def test_training_epochs_match_table5(self):
        assert DEIT_TINY.baseline_epochs == 300
        assert DEIT_TINY.heatvit_epochs == 270
        assert LVVIT_SMALL.baseline_epochs == 400
        assert LVVIT_SMALL.heatvit_epochs == 390

    def test_registry(self):
        assert set(PAPER_BACKBONES) == {"DeiT-T", "DeiT-S", "DeiT-B",
                                        "LV-ViT-S", "LV-ViT-M"}


class TestValidation:
    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            ViTConfig(name="bad", embed_dim=100, num_heads=3)

    def test_indivisible_patches_rejected(self):
        with pytest.raises(ValueError):
            ViTConfig(name="bad", image_size=225, patch_size=16,
                      embed_dim=96, num_heads=3)

    def test_scaled_copy(self):
        smaller = DEIT_TINY.scaled(depth=6)
        assert smaller.depth == 6
        assert smaller.embed_dim == DEIT_TINY.embed_dim
        assert DEIT_TINY.depth == 12     # original untouched

    def test_small_config_factory(self):
        config = small_config(embed_dim=48, num_heads=4)
        assert config.embed_dim == 48
        assert config.head_dim == 12
        assert config.mlp_hidden_dim == 192
