"""Masked-attention invariance: the guarantee the engine's padding uses.

The bucketed engine pads short sequences with placeholder tokens and
masks them out as attention keys.  That is only sound if masked-out
positions cannot influence real tokens *at all* -- the ``-1e9`` score
bias must drive their softmax weight to exactly 0 regardless of the
placeholder embedding contents (bounded values; scores scale with
``|x|^2``, so astronomically large embeddings could defeat the bias).

These tests replace masked positions with arbitrary values and assert
real-token outputs and final logits are unchanged.
"""

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.vit.attention import key_padding_mask, pad_token_sequences


def perturbed(x, mask, rng, scale=10.0):
    """Replace masked-out (mask==0) token embeddings with arbitrary values."""
    noise = rng.uniform(-scale, scale, size=x.shape)
    keep = mask[:, :, None]
    return x * keep + noise * (1.0 - keep)


@pytest.fixture()
def mask():
    # Two images, 8 tokens: one keeps 5, the other 7.
    return key_padding_mask([5, 7], 8)


class TestBlockInvariance:
    def test_single_block(self, tiny_backbone, mask, rng):
        block = tiny_backbone.blocks[0]
        x = rng.normal(size=(2, 8, tiny_backbone.config.embed_dim))
        base = block(Tensor(x), key_mask=mask).data
        for trial in range(3):
            out = block(Tensor(perturbed(x, mask, rng)),
                        key_mask=mask).data
            np.testing.assert_allclose(out * mask[:, :, None],
                                       base * mask[:, :, None],
                                       rtol=0, atol=1e-12)

    def test_stack_of_blocks_and_head(self, tiny_backbone, mask, rng):
        """Real-token logits survive arbitrary padding through the whole
        remaining network (blocks + final norm + head)."""
        x = rng.normal(size=(2, 8, tiny_backbone.config.embed_dim))

        def run(start):
            h = Tensor(start)
            for block in tiny_backbone.blocks:
                h = block(h, key_mask=mask)
            return tiny_backbone.classify(h).data

        base = run(x)
        for trial in range(3):
            np.testing.assert_allclose(run(perturbed(x, mask, rng)), base,
                                       rtol=0, atol=1e-12)

    def test_mask_zero_weight_is_exact(self, tiny_backbone, mask, rng):
        """The masked keys' attention weight is exactly 0, not merely small."""
        attn = tiny_backbone.blocks[0].attn
        x = rng.normal(size=(2, 8, tiny_backbone.config.embed_dim))
        attn(Tensor(x), key_mask=mask)
        weights = attn.last_attention            # (B, h, N, N)
        dead = mask == 0.0                       # (B, N) key positions
        for image in range(2):
            assert np.all(weights[image][:, :, dead[image]] == 0.0)


class TestPaddingHelpers:
    def test_key_padding_mask_layout(self):
        mask = key_padding_mask([2, 4], 4)
        np.testing.assert_array_equal(mask, [[1, 1, 0, 0], [1, 1, 1, 1]])

    def test_pad_token_sequences_roundtrip(self, rng):
        seqs = [rng.normal(size=(3, 6)), rng.normal(size=(5, 6))]
        stacked, mask = pad_token_sequences(seqs)
        assert stacked.shape == (2, 5, 6)
        np.testing.assert_array_equal(stacked[0, :3], seqs[0])
        np.testing.assert_array_equal(stacked[0, 3:], 0.0)
        np.testing.assert_array_equal(stacked[1], seqs[1])
        np.testing.assert_array_equal(mask, key_padding_mask([3, 5], 5))

    def test_pad_too_short_raises(self, rng):
        with pytest.raises(ValueError):
            pad_token_sequences([rng.normal(size=(5, 4))], padded_length=3)

    def test_pad_empty_raises(self):
        with pytest.raises(ValueError):
            pad_token_sequences([])
