"""Tests for the Table II complexity model and stage plans."""

import math

import numpy as np
import pytest

from repro.vit import (DEIT_BASE, DEIT_SMALL, DEIT_TINY, StagePlan,
                       block_layer_costs, block_macs, model_gmacs,
                       pruned_model_gmacs, token_selector_macs,
                       tokens_after_pruning)


class TestTableII:
    def test_total_matches_closed_form(self):
        """Total = 4*N*Dch*h*Dattn + 2*N^2*h*Dattn + 8*N*Dch*Dfc."""
        n, d, h = 197, 384, 6
        total = block_macs(n, d, h, 4 * d)
        expected = 4 * n * d * d + 2 * n * n * d + 8 * n * d * d
        assert total == expected

    def test_six_rows(self):
        rows = block_layer_costs(197, 192, 3, 768)
        assert len(rows) == 6
        assert [r.module for r in rows] == ["MSA"] * 4 + ["FFN"] * 2

    def test_attention_rows_quadratic_in_tokens(self):
        rows_n = block_layer_costs(100, 192, 3, 768)
        rows_2n = block_layer_costs(200, 192, 3, 768)
        # Rows 2 and 3 (QK^T, QK^T x V) scale with N^2.
        for index in (1, 2):
            assert rows_2n[index].macs == 4 * rows_n[index].macs
        # Linear rows scale with N.
        for index in (0, 3, 4, 5):
            assert rows_2n[index].macs == 2 * rows_n[index].macs

    @pytest.mark.parametrize("config,expected,tol", [
        (DEIT_TINY, 1.30, 0.08),     # paper Table VI GMACs column
        (DEIT_SMALL, 4.60, 0.05),
        (DEIT_BASE, 17.60, 0.35),
    ])
    def test_model_gmacs_match_paper(self, config, expected, tol):
        assert model_gmacs(config) == pytest.approx(expected, abs=tol)

    def test_ffn_dominates_msa_linear(self):
        """The FFN is ~2/3 of block compute -- why [29]'s MSA-only
        acceleration is insufficient (Sec. II-E)."""
        rows = block_layer_costs(197, 384, 6, 4 * 384)
        ffn = sum(r.macs for r in rows if r.module == "FFN")
        assert ffn / sum(r.macs for r in rows) > 0.55


class TestTokensAfterPruning:
    def test_full_keep_no_package(self):
        assert tokens_after_pruning(196, 1.0) == 197

    def test_partial_keep_adds_package(self):
        assert tokens_after_pruning(196, 0.5) == math.ceil(98) + 2

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            tokens_after_pruning(196, 0.0)
        with pytest.raises(ValueError):
            tokens_after_pruning(196, 1.5)


class TestStagePlan:
    def test_canonical_boundaries(self):
        plan = StagePlan.canonical(12, (0.7, 0.39, 0.21))
        assert plan.boundaries == (3, 6, 9)

    def test_tokens_per_block(self):
        plan = StagePlan.canonical(12, (0.5, 0.5, 0.5))
        counts = plan.tokens_per_block(12, 196)
        assert counts[:3] == [197] * 3
        assert counts[3] == tokens_after_pruning(196, 0.5)

    def test_monotone_boundaries_required(self):
        with pytest.raises(ValueError):
            StagePlan(boundaries=(6, 3), keep_ratios=(0.5, 0.4))

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            StagePlan(boundaries=(3,), keep_ratios=(1.2,))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            StagePlan(boundaries=(3, 6), keep_ratios=(0.5,))

    @pytest.mark.parametrize("config,ratios,paper_gmacs,tol", [
        # Table VI "Keep Ratio (Stage 1/2/3)" -> #GMACs rows.
        (DEIT_TINY, (0.70, 0.39, 0.21), 0.75, 0.05),
        (DEIT_SMALL, (0.70, 0.39, 0.21), 2.64, 0.10),
        (DEIT_SMALL, (0.90, 0.84, 0.61), 3.86, 0.15),
        (DEIT_SMALL, (0.42, 0.21, 0.13), 2.02, 0.15),
        (DEIT_BASE, (0.90, 0.84, 0.61), 14.79, 0.5),
        (DEIT_BASE, (0.42, 0.21, 0.13), 7.75, 0.6),
    ])
    def test_pruned_gmacs_match_table6(self, config, ratios, paper_gmacs,
                                       tol):
        plan = StagePlan.canonical(config.depth, ratios)
        assert pruned_model_gmacs(config, plan) == pytest.approx(
            paper_gmacs, abs=tol)

    def test_selector_overhead_is_negligible(self):
        """The selector costs well under 1% of the backbone (Sec. IV)."""
        selector = token_selector_macs(197, 384, 6)
        block = block_macs(197, 384, 6, 4 * 384)
        assert selector / block < 0.05

    def test_pruning_reduces_macs_monotonically(self):
        gm = [pruned_model_gmacs(
            DEIT_SMALL, StagePlan.canonical(12, (r, r * 0.7, r * 0.4)))
            for r in (0.9, 0.7, 0.5)]
        assert gm[0] > gm[1] > gm[2]
