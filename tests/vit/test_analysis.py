"""Tests for attention analysis and ASCII visualization."""

import numpy as np
import pytest

from repro.vit import (attention_rollout, head_attention_grid,
                       render_keep_mask, render_token_grid)


class TestRollout:
    def test_shape_and_simplex(self, tiny_backbone, tiny_dataset):
        rollout = attention_rollout(tiny_backbone,
                                    tiny_dataset.images[:4])
        assert rollout.shape == (4, 16)
        assert np.all(rollout >= 0)
        # Rows sum to CLS's total mass over patches (< 1: some stays on
        # CLS itself via the residual term).
        assert np.all(rollout.sum(-1) <= 1.0 + 1e-9)

    def test_max_fusion(self, tiny_backbone, tiny_dataset):
        rollout = attention_rollout(tiny_backbone,
                                    tiny_dataset.images[:2],
                                    head_fusion="max")
        assert rollout.shape == (2, 16)

    def test_unknown_fusion(self, tiny_backbone, tiny_dataset):
        with pytest.raises(ValueError):
            attention_rollout(tiny_backbone, tiny_dataset.images[:1],
                              head_fusion="median")


class TestHeadGrid:
    def test_shape(self, tiny_backbone, tiny_dataset):
        grid = head_attention_grid(tiny_backbone,
                                   tiny_dataset.images[:3])
        assert grid.shape == (3, 3, 4, 4)

    def test_block_selection(self, tiny_backbone, tiny_dataset):
        first = head_attention_grid(tiny_backbone,
                                    tiny_dataset.images[:2],
                                    block_index=0)
        last = head_attention_grid(tiny_backbone,
                                   tiny_dataset.images[:2],
                                   block_index=-1)
        assert not np.allclose(first, last)


class TestAsciiRendering:
    def test_token_grid_shape(self):
        text = render_token_grid(np.arange(16.0))
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == 4 for line in lines)

    def test_token_grid_extremes(self):
        text = render_token_grid(np.array([0.0, 0.0, 0.0, 1.0]))
        assert text.splitlines()[1][1] == "@"    # max gets darkest shade
        assert text.splitlines()[0][0] == " "    # min gets lightest

    def test_constant_grid(self):
        text = render_token_grid(np.ones(9))
        assert set(text.replace("\n", "")) == {" "}

    def test_keep_mask(self):
        mask = np.array([1, 0, 0, 1])
        text = render_keep_mask(mask)
        assert text == "#.\n.#"

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            render_keep_mask(np.ones(5))
        with pytest.raises(ValueError):
            render_token_grid(np.ones(7))
