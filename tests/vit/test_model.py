"""Unit tests for patch embedding, attention, blocks, and the full ViT."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor
from repro.vit import (MultiHeadSelfAttention, PatchEmbedding,
                       TransformerBlock, VisionTransformer, ViTConfig)


CONFIG = ViTConfig(name="unit", image_size=16, patch_size=4, embed_dim=24,
                   depth=2, num_heads=3, num_classes=5)


class TestPatchEmbedding:
    def test_output_shape(self, rng):
        embed = PatchEmbedding(CONFIG, rng=rng)
        out = embed(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 16, 24)

    def test_patch_ordering_row_major(self, rng):
        """Patch k must contain pixels of grid cell (k//4, k%4)."""
        embed = PatchEmbedding(CONFIG, rng=rng)
        image = np.zeros((1, 3, 16, 16))
        image[0, :, 4:8, 8:12] = 7.0      # grid cell (1, 2) -> patch 6
        # Use an identity-ish projection: sum of inputs.
        embed.projection.weight.data = np.ones((48, 24))
        embed.projection.bias.data = np.zeros(24)
        out = embed(Tensor(image)).data[0]
        hot = np.flatnonzero(np.abs(out).sum(axis=-1))
        assert hot.tolist() == [6]

    def test_rejects_wrong_size(self, rng):
        embed = PatchEmbedding(CONFIG, rng=rng)
        with pytest.raises(ValueError):
            embed(Tensor(rng.normal(size=(1, 3, 15, 16))))


class TestAttention:
    def test_shapes_and_probabilities(self, rng):
        attn = MultiHeadSelfAttention(24, 3, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 7, 24))))
        assert out.shape == (2, 7, 24)
        assert attn.last_attention.shape == (2, 3, 7, 7)
        assert np.allclose(attn.last_attention.sum(axis=-1), 1.0)

    def test_key_mask_excludes_tokens(self, rng):
        attn = MultiHeadSelfAttention(24, 3, rng=rng)
        x = Tensor(rng.normal(size=(1, 5, 24)))
        mask = np.array([[1.0, 1.0, 0.0, 1.0, 1.0]])
        attn(x, key_mask=mask)
        assert np.all(attn.last_attention[:, :, :, 2] < 1e-12)

    def test_masked_equals_removed(self, rng):
        """Masking token t must give the same outputs (on other tokens)
        as physically removing it -- the core training/deployment
        equivalence HeatViT relies on."""
        attn = MultiHeadSelfAttention(24, 3, rng=rng)
        x = rng.normal(size=(1, 6, 24))
        mask = np.ones((1, 6))
        mask[0, 3] = 0.0
        masked = attn(Tensor(x), key_mask=mask).data[0]
        reduced = np.delete(x, 3, axis=1)
        removed = attn(Tensor(reduced)).data[0]
        kept = [0, 1, 2, 4, 5]
        assert np.allclose(masked[kept], removed, atol=1e-9)

    def test_cls_attention_requires_forward(self, rng):
        attn = MultiHeadSelfAttention(24, 3, rng=rng)
        with pytest.raises(RuntimeError):
            attn.cls_attention()

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(25, 3)


class TestBlockAndModel:
    def test_block_preserves_shape(self, rng):
        block = TransformerBlock(24, 3, rng=rng)
        out = block(Tensor(rng.normal(size=(2, 9, 24))))
        assert out.shape == (2, 9, 24)

    def test_model_logits_shape(self, rng):
        model = VisionTransformer(CONFIG, rng=rng)
        logits = model(rng.normal(size=(3, 3, 16, 16)))
        assert logits.shape == (3, 5)

    def test_return_hidden(self, rng):
        model = VisionTransformer(CONFIG, rng=rng)
        logits, hidden = model(rng.normal(size=(1, 3, 16, 16)),
                               return_hidden=True)
        assert len(hidden) == CONFIG.depth
        assert hidden[0].shape == (1, 17, 24)

    def test_predict_and_accuracy(self, rng):
        model = VisionTransformer(CONFIG, rng=rng)
        model.eval()
        images = rng.normal(size=(6, 3, 16, 16))
        preds = model.predict(images)
        assert preds.shape == (6,)
        acc = model.accuracy(images, preds)
        assert acc == 1.0

    def test_gradients_reach_all_parameters(self, rng):
        model = VisionTransformer(CONFIG, rng=rng)
        from repro.nn import functional as F
        logits = model(rng.normal(size=(2, 3, 16, 16)))
        F.cross_entropy(logits, np.array([0, 1])).backward()
        missing = [name for name, p in model.named_parameters()
                   if p.grad is None]
        assert not missing, f"no grad for {missing}"

    def test_cls_token_influences_logits(self, rng):
        model = VisionTransformer(CONFIG, rng=rng)
        model.eval()
        images = rng.normal(size=(1, 3, 16, 16))
        with nn.no_grad():
            base = model(images).data
        # A *constant* shift would be removed by LayerNorm; perturb with
        # a non-constant pattern instead.
        model.cls_token.data = model.cls_token.data + rng.normal(
            size=model.cls_token.data.shape)
        with nn.no_grad():
            moved = model(images).data
        assert not np.allclose(base, moved)
