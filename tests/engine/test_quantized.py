"""Quantized serving backend: kernels, compile, and end-to-end parity.

The ``backend="int8"``/``"int16"`` fast path holds itself to the
:func:`repro.quant.quantize_model` simulation -- the surgered Tensor
model.  The contract under test, grade by grade:

* the ``*_reference`` kernels are **bitwise** mirrors of the Tensor
  chain (approx layers / functional layer norm / QuantizedLinear);
* the float64 engine grade is bitwise equal to the surgered model end
  to end -- logits AND per-stage token counts -- through bucketing,
  selectors, and the classify head;
* the float32 timed grade agrees with its float64 twin on top-1 and
  keep decisions (the stated tolerance; quantized arithmetic in two
  float precisions);
* ``int16`` compiles float64-only: its operands overflow the float32
  GEMM exactness window, and the compile must refuse rather than
  silently lose bitwise parity;
* a :class:`repro.engine.SessionSpec` round trip rebuilds a quantized
  session bitwise -- what worker pools rely on.
"""

import copy

import numpy as np
import pytest

from repro import nn
from repro.approx.layers import gelu_approx_t, softmax_approx_t
from repro.core import HeatViT
from repro.engine import (BucketedExecutor, CompileError, InferenceSession,
                          SessionSpec, Workspace, compile_quantized)
from repro.engine.fastpath.qkernels import (approx_gelu_fast,
                                            approx_gelu_reference,
                                            approx_softmax_fast,
                                            approx_softmax_reference,
                                            layer_norm_reference,
                                            quantize_fast,
                                            quantize_reference)
from repro.engine.fastpath.quantized import QuantizedLinearKernel
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.quant import (PER_CHANNEL_CHILDREN, QuantizedLinear,
                         calibrate_minmax, quantize, quantize_model)
from repro.vit import VisionTransformer, ViTConfig


@pytest.fixture(scope="module")
def quant_setup():
    rng = np.random.default_rng(42)
    config = ViTConfig(name="quant-e2e", image_size=16, patch_size=4,
                       embed_dim=24, depth=4, num_heads=3, num_classes=4)
    model = HeatViT(VisionTransformer(config, rng=rng), {1: 0.7, 2: 0.5},
                    rng=rng)
    model.eval()
    images = rng.normal(size=(12, 3, 16, 16))
    return model, images


def surgered(model, bits):
    """The reference: quantize_model surgery on a deep copy."""
    sim = copy.deepcopy(model)
    quantize_model(sim, bits=bits, per_channel=PER_CHANNEL_CHILDREN)
    sim.eval()
    return sim


class TestReferenceKernels:
    """The float64 reference kernels are bitwise mirrors of the Tensor
    chain -- same operations in the same order."""

    def test_layer_norm_bitwise(self, rng):
        x = rng.normal(size=(3, 5, 8))
        weight, bias = rng.normal(size=8), rng.normal(size=8)
        ref = F.layer_norm(Tensor(x), Tensor(weight), Tensor(bias),
                           eps=1e-6).data
        out = layer_norm_reference(x, weight, bias, 1e-6)
        assert out.tobytes() == ref.tobytes()

    def test_gelu_bitwise(self, rng):
        x = rng.normal(size=(4, 7)) * 3
        ref = gelu_approx_t(Tensor(x), delta1=0.5).data
        out = approx_gelu_reference(x, 0.5)
        assert out.tobytes() == ref.tobytes()

    def test_softmax_bitwise(self, rng):
        x = rng.normal(size=(2, 3, 6, 6)) * 5
        ref = softmax_approx_t(Tensor(x), axis=-1, delta2=1.0).data
        out = approx_softmax_reference(x, 1.0)
        assert out.tobytes() == ref.tobytes()

    def test_quantize_matches_integer_path(self, rng):
        x = rng.normal(size=(50,)) * 4
        params = calibrate_minmax(x, bits=8)
        ref = quantize(x, params)
        out = quantize_reference(x, params.scale, params.qmax)
        assert np.array_equal(out, ref.astype(np.float64))
        assert out.tobytes() == ref.astype(np.float64).tobytes()


class TestFastKernels:
    """The float32 in-place kernels track the reference to float32
    rounding and preserve the structural invariants."""

    def test_gelu_close_to_reference(self, rng):
        x64 = rng.normal(size=(6, 33)) * 3
        ref = approx_gelu_reference(x64, 0.5)
        x32 = x64.astype(np.float32)
        out = approx_gelu_fast(x32, 0.5, Workspace(np.float32), "g")
        assert out is x32                      # in place
        np.testing.assert_allclose(out, ref, atol=2e-6)

    def test_softmax_close_and_normalized(self, rng):
        ws = Workspace(np.float32)
        scores64 = rng.normal(size=(2, 3, 9, 9)) * 8
        ref = approx_softmax_reference(scores64, 1.0)
        scores32 = np.ascontiguousarray(scores64, dtype=np.float32)
        out = approx_softmax_fast(scores32, None, 1.0, ws, "s")
        assert out is scores32
        np.testing.assert_allclose(out, ref, atol=2e-6)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-5)

    def test_softmax_padding_rows_get_exact_zero(self, rng):
        """A -1e9 key bias must produce exactly-0.0 attention weight --
        the engine's padding invariant survives the approximation."""
        ws = Workspace(np.float32)
        scores = np.ascontiguousarray(rng.normal(size=(2, 2, 5, 5)),
                                      dtype=np.float32)
        bias = np.zeros((2, 5), dtype=np.float32)
        bias[:, -2:] = -1e9                     # two masked keys
        out = approx_softmax_fast(scores, bias, 1.0, ws, "p")
        assert np.all(out[..., -2:] == 0.0)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-5)

    def test_quantize_fast_matches_reference_scale_free(self, rng):
        ws = Workspace(np.float32)
        x = np.ascontiguousarray(rng.normal(size=(4, 16)) * 3,
                                 dtype=np.float32)
        q, scale = quantize_fast(x.copy(), 127, ws, "q")
        assert np.all(q == np.rint(q))          # integer-valued
        assert np.abs(q).max() <= 127
        params = calibrate_minmax(x.astype(np.float64), bits=8)
        assert scale == pytest.approx(params.scale, rel=1e-6)

    def test_quantize_fast_rejects_non_finite(self):
        ws = Workspace(np.float32)
        bad = np.array([[1.0, np.nan]], dtype=np.float32)
        with pytest.raises(ValueError, match="non-finite"):
            quantize_fast(bad, 127, ws, "q")


class TestQuantizedLinearKernel:
    def test_reference_apply_bitwise_vs_module(self, rng):
        linear = nn.Linear(16, 8, rng=rng)
        qmodule = QuantizedLinear.from_linear(linear, bits=8)
        kernel = QuantizedLinearKernel.from_linear(
            linear, bits=8, dtype=np.dtype(np.float64), per_channel=False)
        x = rng.normal(size=(3, 5, 16))
        ref = qmodule(Tensor(x)).data
        out = kernel.apply_reference(x)
        assert out.tobytes() == ref.tobytes()

    def test_per_channel_reference_bitwise(self, rng):
        linear = nn.Linear(12, 6, rng=rng)
        qmodule = QuantizedLinear.from_linear(linear, bits=8,
                                              per_channel=True)
        kernel = QuantizedLinearKernel.from_linear(
            linear, bits=8, dtype=np.dtype(np.float64), per_channel=True)
        x = rng.normal(size=(4, 12))
        assert kernel.apply_reference(x).tobytes() == \
            qmodule(Tensor(x)).data.tobytes()

    def test_float32_exact_window_rejected(self, rng):
        """127^2 * K beyond 2^24 can round inside a float32 GEMM, which
        would break bitwise parity -- the compile must refuse."""
        wide = nn.Linear(2048, 4, rng=rng)
        with pytest.raises(CompileError, match="exact"):
            QuantizedLinearKernel.from_linear(
                wide, bits=8, dtype=np.dtype(np.float32), per_channel=False)
        # The same reduction length is fine in float64 (2^53 window).
        QuantizedLinearKernel.from_linear(
            wide, bits=8, dtype=np.dtype(np.float64), per_channel=False)


class TestCompileValidation:
    def test_bits_out_of_range(self, quant_setup):
        model, _ = quant_setup
        for bits in (1, 17):
            with pytest.raises(CompileError):
                compile_quantized(model, bits=bits)

    def test_dtype_defaults(self, quant_setup):
        model, _ = quant_setup
        assert compile_quantized(model).dtype == np.dtype(np.float32)
        assert compile_quantized(model, bits=16).dtype == \
            np.dtype(np.float64)

    def test_int16_refuses_float32(self, quant_setup):
        model, _ = quant_setup
        with pytest.raises(CompileError):
            compile_quantized(model, bits=16, dtype=np.float32)

    def test_ragged_support_by_grade(self, quant_setup):
        model, _ = quant_setup
        # Stock float32 selectors compile to ragged-capable kernels;
        # the parity grade runs the surgered selector *module* per
        # bucket group, which the executor must detect and serve via
        # its dense per-group fallback.
        assert compile_quantized(model).supports_ragged
        assert not compile_quantized(model,
                                     dtype=np.float64).supports_ragged


class TestEndToEndParity:
    def test_int8_f64_bitwise_vs_simulation(self, quant_setup):
        model, images = quant_setup
        ref = BucketedExecutor(surgered(model, 8),
                               backend="tensor").run(images)
        out = BucketedExecutor(model, backend="int8",
                               dtype=np.float64).run(images)
        assert out.logits.tobytes() == ref.logits.tobytes()
        assert len(out.tokens_per_stage) == len(ref.tokens_per_stage)
        for mine, theirs in zip(out.tokens_per_stage,
                                ref.tokens_per_stage):
            assert np.array_equal(mine, theirs)

    def test_int16_f64_bitwise_vs_simulation(self, quant_setup):
        model, images = quant_setup
        ref = BucketedExecutor(surgered(model, 16),
                               backend="tensor").run(images)
        out = BucketedExecutor(model, backend="int16").run(images)
        assert out.logits.tobytes() == ref.logits.tobytes()

    def test_int8_f32_agrees_with_f64(self, quant_setup):
        """The timed grade's stated tolerance against its f64 twin:
        top-1 and per-image keep decisions each agree on >= 90% of
        images (a selector score sitting exactly on the 0.5 threshold
        can flip with float32 rounding -- one image here does), any
        keep difference is a single token, and images whose token path
        matched have close logits.  (Close, not float32-rounding-equal:
        the activation quantization is dynamic, so a float32 abs-max
        can shift a rint boundary and move an activation by one whole
        quantization step.)"""
        model, images = quant_setup
        out64 = BucketedExecutor(model, backend="int8",
                                 dtype=np.float64).run(images)
        out32 = BucketedExecutor(model, backend="int8").run(images)
        top1 = np.mean(out32.logits.argmax(-1) == out64.logits.argmax(-1))
        assert top1 >= 0.9
        stages32 = np.stack(out32.tokens_per_stage)
        stages64 = np.stack(out64.tokens_per_stage)
        same_path = np.all(stages32 == stages64, axis=0)
        assert same_path.mean() >= 0.9
        assert np.abs(stages32 - stages64).max() <= 1
        assert np.abs(out32.logits[same_path]
                      - out64.logits[same_path]).max() < 0.02

    def test_dense_model_parity(self, rng):
        """No selectors: the pure block/classify pipeline, both grades."""
        config = ViTConfig(name="quant-dense", image_size=16, patch_size=8,
                           embed_dim=16, depth=2, num_heads=2,
                           num_classes=4)
        model = HeatViT(VisionTransformer(config, rng=rng), {}, rng=rng)
        model.eval()
        images = rng.normal(size=(5, 3, 16, 16))
        ref = BucketedExecutor(surgered(model, 8),
                               backend="tensor").run(images)
        out = BucketedExecutor(model, backend="int8",
                               dtype=np.float64).run(images)
        assert out.logits.tobytes() == ref.logits.tobytes()


class TestSessionIntegration:
    def test_session_reports_backend_and_dtype(self, quant_setup):
        model, _ = quant_setup
        session = InferenceSession(model, batch_size=8, backend="int8")
        assert session.backend == "int8"
        assert session.dtype == np.dtype(np.float32)

    def test_spec_round_trip_rebuilds_bitwise(self, quant_setup):
        """What WorkerPool children do: rebuild the session from its
        spec -- same backend, same dtype, bitwise-identical logits."""
        model, images = quant_setup
        session = InferenceSession(model, batch_size=8, backend="int8")
        spec = SessionSpec.from_session(session)
        rebuilt = spec.build()
        assert rebuilt.backend == "int8"
        assert rebuilt.dtype == np.dtype(np.float32)
        theirs = rebuilt.submit(images)
        mine = session.submit(images)
        assert mine.logits.tobytes() == theirs.logits.tobytes()

    def test_unknown_backend_rejected(self, quant_setup):
        model, _ = quant_setup
        with pytest.raises(ValueError, match="backend"):
            InferenceSession(model, backend="int4")
