"""Parity: the bucketed engine must reproduce ``forward_pruned`` exactly.

The engine's whole contract is "same semantics, vectorized": for every
batch size, selector configuration, and bucketing policy, the batched
logits must match the per-image reference loop to within 1e-8 and the
per-stage token bookkeeping must match exactly.
"""

import numpy as np
import pytest

from repro.core import HeatViT, PruningRecord
from repro.engine import (BucketedExecutor, BucketingPolicy,
                          InferenceSession, SessionResult)

BATCH_SIZES = [1, 3, 8, 17]
TOLERANCE = 1e-8


def make_model(backbone, selector_blocks, *, use_packager=True, seed=42):
    model = HeatViT(backbone, selector_blocks,
                    rng=np.random.default_rng(seed),
                    use_packager=use_packager)
    model.eval()
    return model


def assert_parity(model, images, *, batch_size=32, policy=None):
    record_ref = PruningRecord()
    ref = model.forward_pruned(images, record=record_ref)
    session = InferenceSession(model, batch_size=batch_size, policy=policy)
    record = PruningRecord()
    result = session.submit(images, record=record)
    np.testing.assert_allclose(result.logits, ref.data, rtol=0,
                               atol=TOLERANCE)
    assert len(record.tokens_per_stage) == len(record_ref.tokens_per_stage)
    for engine_counts, ref_counts in zip(record.tokens_per_stage,
                                         record_ref.tokens_per_stage):
        np.testing.assert_array_equal(engine_counts, ref_counts)
    np.testing.assert_allclose(record.cumulative_keep,
                               record_ref.cumulative_keep, atol=1e-12)
    return result


class TestLogitsParity:
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("use_packager", [True, False])
    def test_batch_sizes_and_packager(self, tiny_backbone, tiny_dataset,
                                      batch, use_packager):
        model = make_model(tiny_backbone, {1: 0.6, 3: 0.4},
                           use_packager=use_packager)
        assert_parity(model, tiny_dataset.images[:batch])

    def test_selector_before_block_zero(self, tiny_backbone, tiny_dataset):
        """A selector in front of block 0 leaves no shared prefix."""
        model = make_model(tiny_backbone, {0: 0.7, 2: 0.5})
        assert_parity(model, tiny_dataset.images[:9])

    def test_single_selector(self, tiny_backbone, tiny_dataset):
        model = make_model(tiny_backbone, {2: 0.5})
        assert_parity(model, tiny_dataset.images[:11])

    def test_no_selectors_dense(self, tiny_backbone, tiny_dataset):
        """Degenerate config: the engine is just a batched dense forward."""
        model = make_model(tiny_backbone, {})
        result = assert_parity(model, tiny_dataset.images[:5])
        assert result.tokens_per_stage == []

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_models(self, tiny_backbone, tiny_dataset, seed):
        model = make_model(tiny_backbone, {1: 0.8, 2: 0.55, 3: 0.35},
                           seed=seed)
        assert_parity(model, tiny_dataset.images[:13])

    def test_cost_driven_merging_preserves_parity(self, tiny_backbone,
                                                  tiny_dataset):
        """A huge bucket overhead makes the cost-aware planner merge
        every stage into one maximally padded bucket; padded keys are
        masked, so logits must still match the reference loop."""
        from repro.core.latency import LatencySparsityTable
        from repro.cost import CostModel

        model = make_model(tiny_backbone, {1: 0.6, 3: 0.4})
        greedy = CostModel(
            LatencySparsityTable({0.5: 1e-6, 1.0: 1e-6}),
            num_patches=model.config.num_patches,
            batch_overhead_ms=1e6, bucket_overhead_ms=1e6)
        ref = model.forward_pruned(tiny_dataset.images[:16])
        session = InferenceSession(model, batch_size=16, cost_model=greedy)
        result = session.submit(tiny_dataset.images[:16])
        np.testing.assert_allclose(result.logits, ref.data, rtol=0,
                                   atol=TOLERANCE)
        assert all(s.num_buckets == 1 for s in result.stage_stats)

    def test_chunking_matches_one_shot(self, tiny_backbone, tiny_dataset):
        """batch_size smaller than the submission exercises chunk merge."""
        model = make_model(tiny_backbone, {1: 0.6, 3: 0.4})
        small = assert_parity(model, tiny_dataset.images[:17], batch_size=4)
        large = assert_parity(model, tiny_dataset.images[:17],
                              batch_size=17)
        np.testing.assert_allclose(small.logits, large.logits, rtol=0,
                                   atol=TOLERANCE)


class TestPolicies:
    @pytest.mark.parametrize("policy", [
        None,
        BucketingPolicy(allow_padding=False),
        BucketingPolicy(pad_limit=1, min_bucket=1),
        BucketingPolicy(pad_limit=64, max_pad_fraction=1.0, min_bucket=64),
    ], ids=["default", "no-padding", "tight", "greedy"])
    def test_policy_invariance(self, tiny_backbone, tiny_dataset, policy):
        """Bucketing is an execution detail: every policy, same logits."""
        model = make_model(tiny_backbone, {1: 0.6, 2: 0.45})
        assert_parity(model, tiny_dataset.images[:17], policy=policy)


class TestGroupedSubmission:
    """submit_many / run_grouped: the remainder-carrying entry points."""

    def test_grouped_matches_flat_bitwise(self, tiny_backbone,
                                          tiny_dataset):
        model = make_model(tiny_backbone, {1: 0.6, 3: 0.4})
        images = tiny_dataset.images[:17]
        session = InferenceSession(model, batch_size=6)
        flat = session.submit(images)
        for splits in [(5, 12), (1, 2, 3), (17,), (0, 9)]:
            bounds = np.cumsum((0,) + splits)
            groups = [images[lo:hi] for lo, hi in zip(bounds[:-1],
                                                      bounds[1:])]
            groups.append(images[bounds[-1]:])
            result, slices = session.submit_many(groups)
            np.testing.assert_array_equal(result.logits, flat.logits)
            np.testing.assert_array_equal(result.latency_ms,
                                          flat.latency_ms)
            # Slices partition the batch in submission order.
            assert slices[0].start == 0 and slices[-1].stop == 17
            for group, rows in zip(groups, slices):
                assert rows.stop - rows.start == group.shape[0]
            for prev, nxt in zip(slices, slices[1:]):
                assert prev.stop == nxt.start

    def test_executor_run_grouped_slices(self, tiny_backbone,
                                         tiny_dataset):
        model = make_model(tiny_backbone, {1: 0.6})
        executor = BucketedExecutor(model)
        groups = [tiny_dataset.images[:3], tiny_dataset.images[3:3],
                  tiny_dataset.images[3:8]]
        result, slices = executor.run_grouped(groups)
        assert result.logits.shape == (8, model.config.num_classes)
        assert [s.stop - s.start for s in slices] == [3, 0, 5]
        whole = executor.run(tiny_dataset.images[:8])
        np.testing.assert_array_equal(result.logits, whole.logits)

    def test_run_grouped_all_empty(self, tiny_backbone):
        model = make_model(tiny_backbone, {1: 0.6})
        executor = BucketedExecutor(model)
        result, slices = executor.run_grouped([np.zeros((0, 3, 16, 16))])
        assert result.logits.shape == (0, model.config.num_classes)
        assert slices == [slice(0, 0)]

    def test_submit_many_empty_list(self, tiny_backbone):
        model = make_model(tiny_backbone, {1: 0.6})
        session = InferenceSession(model, batch_size=8)
        result, slices = session.submit_many([])
        assert slices == []
        assert result.logits.shape == (0, model.config.num_classes)
        assert result.latency_ms.shape == (0,)

    def test_grouped_record_matches_reference(self, tiny_backbone,
                                              tiny_dataset):
        model = make_model(tiny_backbone, {1: 0.6, 3: 0.4})
        images = tiny_dataset.images[:10]
        ref_record = PruningRecord()
        model.forward_pruned(images, record=ref_record)
        session = InferenceSession(model, batch_size=4)
        record = PruningRecord()
        session.submit_many([images[:4], images[4:10]], record=record)
        for engine_counts, ref_counts in zip(record.tokens_per_stage,
                                             ref_record.tokens_per_stage):
            np.testing.assert_array_equal(engine_counts, ref_counts)


class TestSessionResult:
    def test_latency_and_throughput_fields(self, tiny_backbone,
                                           tiny_dataset):
        model = make_model(tiny_backbone, {1: 0.6, 3: 0.4})
        session = InferenceSession(model, batch_size=8)
        result = session.submit(tiny_dataset.images[:10])
        assert result.latency_ms.shape == (10,)
        assert np.all(result.latency_ms > 0)
        # Pruned images must be estimated no slower than the dense model.
        table = session.latency_table
        dense = table.model_latency([1.0] * model.config.depth)
        assert np.all(result.latency_ms <= dense + 1e-9)
        assert result.wall_time_s > 0
        assert result.images_per_second > 0
        assert result.predictions.shape == (10,)

    def test_executor_empty_batch(self, tiny_backbone):
        model = make_model(tiny_backbone, {1: 0.6})
        executor = BucketedExecutor(model)
        result = executor.run(np.zeros((0, 3, 16, 16)))
        assert result.logits.shape == (0, model.config.num_classes)

    def test_session_empty_submission(self, tiny_backbone):
        model = make_model(tiny_backbone, {1: 0.6})
        session = InferenceSession(model, batch_size=8)
        result = session.submit(np.zeros((0, 3, 16, 16)))
        assert result.logits.shape == (0, model.config.num_classes)
        assert result.latency_ms.shape == (0,)
        assert result.latency_ms.dtype == np.float64
        assert result.predictions.shape == (0,)

    def test_latency_field_always_well_formed(self, tiny_backbone,
                                              tiny_dataset):
        """latency_ms is never None: a (B,) float array for every
        construction path, including the bare dataclass default."""
        bare = SessionResult(logits=np.zeros((0, 4)))
        assert isinstance(bare.latency_ms, np.ndarray)
        assert bare.latency_ms.shape == (0,)
        model = make_model(tiny_backbone, {})          # dense fallback
        session = InferenceSession(model, batch_size=8)
        result = session.submit(tiny_dataset.images[:3])
        assert result.latency_ms.shape == (3,)
        assert result.latency_ms.dtype == np.float64
        assert np.all(result.latency_ms > 0)

    def test_default_cost_model_is_per_config(self, tiny_backbone):
        """With no explicit cost model the session calibrates one from
        the FPGA simulator for ITS OWN config (not the paper's DeiT-T
        values), batch overhead included."""
        from repro.hardware.latency_table import build_cost_model

        model = make_model(tiny_backbone, {1: 0.6})
        session = InferenceSession(model, batch_size=8)
        expected = build_cost_model(model.config)
        assert session.cost_model.table.items() == expected.table.items()
        assert session.latency_table.items() == expected.table.items()
        assert session.cost_model.batch_overhead_ms == (
            expected.batch_overhead_ms)
        assert session.cost_model.batch_overhead_ms > 0
        # Length -> keep-ratio conversion must use the model's real
        # non-patch slot count (CLS + package), not a bare CLS default.
        assert session.cost_model.extra_tokens == model.non_patch_slots
        assert session.marginal_image_ms > 0
        # The estimate tracks the operating point automatically through
        # set_keep_ratios: pruning harder must not increase it.
        loose = session.marginal_image_ms
        model.set_keep_ratios([0.5])
        assert session.marginal_image_ms <= loose
        model.set_keep_ratios([0.6])
        assert session.marginal_image_ms == loose

    def test_estimated_batch_latency_includes_chunk_overheads(
            self, tiny_backbone):
        """Batch pricing pays one per-batch overhead per executor chunk
        and accepts either an image count or per-request group sizes."""
        from repro.cost import CostModel
        from repro.core.latency import LatencySparsityTable

        table = LatencySparsityTable({0.5: 1.0, 1.0: 1.0})
        cost_model = CostModel(table, num_patches=16,
                               batch_overhead_ms=3.0,
                               bucket_overhead_ms=0.5)
        model = make_model(tiny_backbone, {1: 0.6})
        session = InferenceSession(model, batch_size=8,
                                   cost_model=cost_model)
        per_image = session.marginal_image_ms
        cost = session.estimated_batch_cost(12)     # 2 chunks of <= 8
        assert cost.overhead_ms == pytest.approx(2 * 3.0)
        assert cost.marginal_ms == pytest.approx(12 * per_image)
        assert session.estimated_batch_latency_ms(12) == pytest.approx(
            cost.total_ms)
        assert session.estimated_batch_latency_ms([5, 7]) == pytest.approx(
            cost.total_ms)
        assert session.estimated_batch_cost(0).total_ms == 0.0

    def test_cost_model_and_table_are_exclusive(self, tiny_backbone):
        from repro.cost import paper_cost_model

        model = make_model(tiny_backbone, {1: 0.6})
        with pytest.raises(ValueError):
            InferenceSession(model, cost_model=paper_cost_model(),
                             latency_table=paper_cost_model().table)
        with pytest.raises(TypeError):
            InferenceSession(model, cost_model=object())

    def test_invalid_batch_size(self, tiny_backbone):
        model = make_model(tiny_backbone, {1: 0.6})
        with pytest.raises(ValueError):
            InferenceSession(model, batch_size=0)

    def test_submit_restores_training_mode(self, tiny_backbone,
                                           tiny_dataset):
        """A session shared with a training loop must not leave the
        model in eval mode (and must still produce eval-mode logits)."""
        model = make_model(tiny_backbone, {1: 0.6, 3: 0.4})
        ref = model.forward_pruned(tiny_dataset.images[:5])   # eval mode
        model.train()
        session = InferenceSession(model, batch_size=8)
        result = session.submit(tiny_dataset.images[:5])
        assert model.training
        assert all(s.training for s in model.selectors)
        np.testing.assert_allclose(result.logits, ref.data, rtol=0,
                                   atol=TOLERANCE)
