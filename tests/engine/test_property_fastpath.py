"""Property-based tests (hypothesis) for the fused fast-path kernels.

The fused masked softmax must behave like a softmax no matter the
scores: every row sums to 1, masked (padded) keys carry exactly zero
weight, and real-key probabilities match the Tensor reference softmax.
Both the workspace (BLAS row sums + shift-free guard) and the
self-contained fallback code paths are exercised, including scores
large enough to force the max-shifted branch.  The fused LayerNorm is
held against the Tensor reference, with and without its affine folded
away.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.fastpath import (Workspace, fused_layer_norm,
                                   gelu_exact, gelu_rational,
                                   mask_to_bias, masked_softmax)
from repro.nn import functional as F
from repro.nn.tensor import Tensor

finite = st.floats(-30.0, 30.0, allow_nan=False, width=32)


def scores_case(draw, max_b=4, max_h=3, max_t=12):
    b = draw(st.integers(1, max_b))
    h = draw(st.integers(1, max_h))
    t = draw(st.integers(1, max_t))
    values = draw(st.lists(finite, min_size=b * h * t * t,
                           max_size=b * h * t * t))
    scores = np.array(values, dtype=np.float64).reshape(b, h, t, t)
    # Mask with at least one real key per image.
    real = draw(st.lists(st.integers(1, t), min_size=b, max_size=b))
    mask = np.zeros((b, t))
    for row, keep in enumerate(real):
        mask[row, :keep] = 1.0
    return scores, mask


@st.composite
def scores_and_mask(draw):
    return scores_case(draw)


class TestMaskedSoftmaxProperties:
    @given(case=scores_and_mask(), use_ws=st.booleans(),
           scale=st.sampled_from([1.0, 100.0]))
    @settings(max_examples=120, deadline=None)
    def test_rows_sum_to_one_and_padded_keys_zero(self, case, use_ws,
                                                  scale):
        """Sum-to-1 and exact zeros on masked keys, on every code path
        (``scale=100`` pushes scores outside the shift-free guard)."""
        scores, mask = case
        scores = scores * scale
        ws = Workspace(np.float64) if use_ws else None
        bias = mask_to_bias(mask, np.float64)
        out = masked_softmax(scores.copy(), bias, ws=ws)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)
        masked_cols = mask[:, None, None, :] == 0.0
        assert (out[np.broadcast_to(masked_cols, out.shape)] == 0.0).all()
        assert np.isfinite(out).all()

    @given(case=scores_and_mask(), use_ws=st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_matches_tensor_reference(self, case, use_ws):
        """Same probabilities as the reference masked softmax chain."""
        scores, mask = case
        bias = (1.0 - mask)[:, None, None, :] * (-1e9)
        ref = F.softmax(Tensor(scores + bias), axis=-1).data
        ws = Workspace(np.float64) if use_ws else None
        out = masked_softmax(scores.copy(),
                             mask_to_bias(mask, np.float64), ws=ws)
        np.testing.assert_allclose(out, ref, rtol=0, atol=1e-12)

    @given(case=scores_and_mask())
    @settings(max_examples=60, deadline=None)
    def test_unmasked_matches_reference(self, case):
        scores, _ = case
        ref = F.softmax(Tensor(scores), axis=-1).data
        out = masked_softmax(scores.copy(), ws=Workspace(np.float64))
        np.testing.assert_allclose(out, ref, rtol=0, atol=1e-12)

    @given(case=scores_and_mask(), use_ws=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_three_dimensional_scores(self, case, use_ws):
        """The bias broadcast must follow the scores' rank (the docs
        promise any >= 2-D scores, e.g. the selector's (M, h, 2))."""
        scores4, mask = case
        scores = scores4[:, 0]                  # (B, T, T)
        bias = (1.0 - mask)[:, None, :] * (-1e9)
        ref = F.softmax(Tensor(scores + bias), axis=-1).data
        ws = Workspace(np.float64) if use_ws else None
        out = masked_softmax(scores.copy(),
                             mask_to_bias(mask, np.float64), ws=ws)
        np.testing.assert_allclose(out, ref, rtol=0, atol=1e-12)


@st.composite
def token_batches(draw):
    b = draw(st.integers(1, 5))
    t = draw(st.integers(1, 6))
    d = draw(st.integers(2, 16))
    values = draw(st.lists(finite, min_size=b * t * d, max_size=b * t * d))
    return np.array(values, dtype=np.float64).reshape(b, t, d)


class TestFusedLayerNormProperties:
    @given(x=token_batches(), use_ws=st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_matches_tensor_reference(self, x, use_ws):
        dim = x.shape[-1]
        rng = np.random.default_rng(dim)
        weight = rng.normal(size=dim)
        bias = rng.normal(size=dim)
        ref = F.layer_norm(Tensor(x), Tensor(weight), Tensor(bias),
                           eps=1e-6).data
        out = np.empty_like(x)
        ws = Workspace(np.float64) if use_ws else None
        fused_layer_norm(x, weight, bias, 1e-6, out=out, ws=ws)
        # Constant (zero-variance) rows normalize by 1/sqrt(eps) = 1e3,
        # amplifying the two implementations' differently-ordered
        # mean subtraction to ~|x| * eps_machine * 1e3 ~ 7e-12 at the
        # strategy's +/-30 bound -- the tolerance must clear that
        # cancellation floor.
        np.testing.assert_allclose(out, ref, rtol=0, atol=1e-10)

    @given(x=token_batches(), use_ws=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_affine_folded_form(self, x, use_ws):
        """weight=None stops at the normalized activations (the affine
        lives in the next GEMM after compile-time folding)."""
        ref = F.layer_norm(Tensor(x), Tensor(np.ones(x.shape[-1])),
                           Tensor(np.zeros(x.shape[-1])), eps=1e-6).data
        out = np.empty_like(x)
        ws = Workspace(np.float64) if use_ws else None
        fused_layer_norm(x, None, None, 1e-6, out=out, ws=ws)
        np.testing.assert_allclose(out, ref, rtol=0, atol=1e-10)


class TestGeluKernels:
    @given(values=st.lists(st.floats(-8.0, 8.0, allow_nan=False),
                           min_size=1, max_size=64))
    @settings(max_examples=120, deadline=None)
    def test_exact_matches_reference(self, values):
        x = np.array(values, dtype=np.float64).reshape(1, -1)
        ref = F.gelu(Tensor(x)).data
        out = gelu_exact(x.copy(), Workspace(np.float64), "g")
        np.testing.assert_allclose(out, ref, rtol=0, atol=1e-15)

    @given(values=st.lists(st.floats(-8.0, 8.0, allow_nan=False),
                           min_size=1, max_size=64))
    @settings(max_examples=120, deadline=None)
    def test_rational_close_to_exact(self, values):
        """A&S 7.1.26: erf error <= 1.5e-7 => GELU error <= ~|x| * 1e-7."""
        x = np.array(values, dtype=np.float64).reshape(1, -1)
        ref = F.gelu(Tensor(x)).data
        out = gelu_rational(x.copy(), Workspace(np.float64), "g")
        bound = 2e-7 * np.maximum(np.abs(x), 1.0)
        assert (np.abs(out - ref) <= bound).all()


class TestWorkspacePooling:
    @given(shapes=st.lists(st.tuples(st.integers(1, 6), st.integers(1, 6)),
                           min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_reuse_is_keyed_by_name_and_shape(self, shapes):
        ws = Workspace(np.float32)
        first = {}
        for shape in shapes:
            buf = ws.take("s", shape)
            assert buf.shape == shape
            if shape in first:
                assert buf is first[shape]
            else:
                first[shape] = buf
        assert len(ws) == len(first)
        assert ws.misses == len(first)
        assert ws.hits == len(shapes) - len(first)
