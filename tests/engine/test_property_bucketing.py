"""Property-based tests (hypothesis) for the bucket planner and the
grouped remainder-carrying path.

``plan_buckets`` invariants, over random length distributions and random
policies: every image index appears in exactly one bucket, a bucket's
padded length is the max of (and hence >= each of) its members' real
lengths, and no merge the policy's ``may_merge`` would reject ever
happens.  ``pack_groups`` -- the remainder-carrying chunker -- must
partition every group exactly once, respect the chunk capacity, and
preserve global submission order.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BucketingPolicy, pack_groups, plan_buckets

lengths_strategy = st.lists(st.integers(2, 200), min_size=0, max_size=80)

policy_strategy = st.builds(
    BucketingPolicy,
    allow_padding=st.booleans(),
    pad_limit=st.integers(0, 32),
    max_pad_fraction=st.floats(0.0, 1.0, allow_nan=False),
    min_bucket=st.integers(1, 16),
)


class TestPlanBucketsProperties:
    @given(lengths=lengths_strategy, policy=policy_strategy)
    @settings(max_examples=200, deadline=None)
    def test_partition_and_padding_invariants(self, lengths, policy):
        lengths = np.asarray(lengths, dtype=int)
        plans = plan_buckets(lengths, policy)
        covered = [int(i) for plan in plans for i in plan.indices]
        assert sorted(covered) == list(range(lengths.size))
        for plan in plans:
            np.testing.assert_array_equal(plan.lengths,
                                          lengths[plan.indices])
            assert plan.padded_length == int(plan.lengths.max())
            assert np.all(plan.lengths <= plan.padded_length)
            assert plan.padded_tokens == int(
                (plan.padded_length - plan.lengths).sum())

    @given(lengths=lengths_strategy, policy=policy_strategy)
    @settings(max_examples=200, deadline=None)
    def test_may_merge_never_violated(self, lengths, policy):
        """Every shorter length sharing a bucket passed the policy check
        with its full exact-group size (all images of one length always
        travel together)."""
        lengths = np.asarray(lengths, dtype=int)
        for plan in plan_buckets(lengths, policy):
            for member_length in np.unique(plan.lengths):
                if member_length == plan.padded_length:
                    continue
                group_size = int((plan.lengths == member_length).sum())
                assert group_size == int((lengths == member_length).sum())
                assert policy.may_merge(plan.padded_length,
                                        int(member_length), group_size)

    @given(lengths=lengths_strategy, policy=policy_strategy)
    @settings(max_examples=100, deadline=None)
    def test_buckets_ordered_longest_first(self, lengths, policy):
        plans = plan_buckets(lengths, policy)
        padded = [plan.padded_length for plan in plans]
        assert padded == sorted(padded, reverse=True)

    @given(lengths=lengths_strategy)
    @settings(max_examples=100, deadline=None)
    def test_no_padding_means_exact_buckets(self, lengths):
        policy = BucketingPolicy(allow_padding=False)
        for plan in plan_buckets(lengths, policy):
            assert not plan.needs_padding
            assert plan.padded_tokens == 0
            assert np.unique(plan.lengths).size <= 1


class TestPackGroupsProperties:
    @given(sizes=st.lists(st.integers(0, 40), min_size=0, max_size=30),
           max_batch=st.one_of(st.none(), st.integers(1, 17)))
    @settings(max_examples=200, deadline=None)
    def test_partition_capacity_and_order(self, sizes, max_batch):
        chunks = pack_groups(sizes, max_batch)
        # Every row of every group appears exactly once, in order.
        seen = {index: [] for index in range(len(sizes))}
        flat = []
        for chunk in chunks:
            assert chunk                      # no empty chunks emitted
            rows = 0
            for index, lo, hi in chunk:
                assert 0 <= lo < hi <= sizes[index]
                seen[index].append((lo, hi))
                rows += hi - lo
                flat.append((index, lo))
            if max_batch is not None:
                assert rows <= max_batch
        for index, size in enumerate(sizes):
            pieces = seen[index]
            assert [lo for lo, _ in pieces] == sorted(
                lo for lo, _ in pieces)
            covered = sorted(row for lo, hi in pieces
                             for row in range(lo, hi))
            assert covered == list(range(size))
        assert flat == sorted(flat)           # global FIFO order kept

    @given(sizes=st.lists(st.integers(0, 40), min_size=0, max_size=30),
           max_batch=st.integers(1, 17))
    @settings(max_examples=100, deadline=None)
    def test_chunks_match_flat_slicing(self, sizes, max_batch):
        """Chunk boundaries land exactly where ``submit`` would slice
        the concatenation -- the bitwise-equivalence precondition for
        carried remainders."""
        chunks = pack_groups(sizes, max_batch)
        total = sum(sizes)
        expected = [min(max_batch, total - lo)
                    for lo in range(0, total, max_batch)]
        assert [sum(hi - lo for _, lo, hi in chunk)
                for chunk in chunks] == expected

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            pack_groups([3], max_batch=0)
        with pytest.raises(ValueError):
            pack_groups([-1], max_batch=4)
