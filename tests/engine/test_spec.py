"""SessionSpec + pickling: sessions must cross a process boundary.

The multi-worker backend ships sessions to executor processes either as
a :class:`repro.engine.SessionSpec` (config + weights, rebuilt in the
child) or by pickle.  Both roads must reproduce the parent's results
*bit for bit* -- rebuild runs the same float64 arithmetic on the same
weights, so the tolerance here is exact equality (stricter than the
issue's 1e-16 bar).
"""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro import nn
from repro.core import HeatViT
from repro.engine import (CompiledModel, InferenceSession, SessionSpec,
                          SpecError, compile_model)
from repro.nn.tensor import Tensor
from repro.nn import functional as F


@pytest.fixture(scope="module")
def model(tiny_backbone):
    model = HeatViT(tiny_backbone, {1: 0.7, 2: 0.5},
                    rng=np.random.default_rng(3))
    model.eval()
    return model


def make_session(model, backend="tensor", dtype=None):
    return InferenceSession(model, batch_size=8, backend=backend,
                            dtype=dtype)


class TestSessionSpec:
    @pytest.mark.parametrize("backend,dtype", [("tensor", None),
                                               ("fastpath", "float32"),
                                               ("fastpath", "float64")])
    def test_rebuild_is_bitwise_identical(self, model, tiny_dataset,
                                          backend, dtype):
        session = make_session(model, backend=backend, dtype=dtype)
        rebuilt = session.spec().build()
        assert rebuilt.backend == session.backend
        assert rebuilt.dtype == session.dtype
        assert rebuilt.batch_size == session.batch_size
        reference = session.submit(tiny_dataset.images[:12])
        result = rebuilt.submit(tiny_dataset.images[:12])
        np.testing.assert_array_equal(result.logits, reference.logits)
        np.testing.assert_array_equal(result.latency_ms,
                                      reference.latency_ms)
        for got, want in zip(result.tokens_per_stage,
                             reference.tokens_per_stage):
            np.testing.assert_array_equal(got, want)

    def test_spec_carries_session_knobs(self, model):
        session = make_session(model)
        spec = session.spec(metadata={"origin": "test"})
        assert spec.cost_model is session.cost_model
        assert spec.policy is session.policy
        assert spec.selector_blocks == {1: 0.7, 2: 0.5}
        assert spec.use_packager is True
        assert spec.metadata == {"origin": "test"}

    def test_spec_itself_pickles(self, model, tiny_dataset):
        session = make_session(model)
        spec = pickle.loads(pickle.dumps(session.spec()))
        rebuilt = spec.build()
        reference = session.submit(tiny_dataset.images[:6])
        np.testing.assert_array_equal(
            rebuilt.submit(tiny_dataset.images[:6]).logits,
            reference.logits)

    def test_non_stock_classifier_rejected(self, tiny_backbone):
        model = HeatViT(
            tiny_backbone, {1: 0.6}, rng=np.random.default_rng(5),
            classifier_factory=lambda rng: _PlainClassifier(
                tiny_backbone.config.embed_dim,
                tiny_backbone.config.num_heads, rng))
        model.eval()
        with pytest.raises(SpecError, match="non-stock classifier"):
            make_session(model).spec()

    def test_non_gelu_activation_rejected(self, tiny_backbone):
        model = HeatViT(tiny_backbone, {1: 0.6},
                        rng=np.random.default_rng(6), activation=nn.ReLU)
        model.eval()
        with pytest.raises(SpecError, match="non-stock activation"):
            make_session(model).spec()

    def test_plain_backbone_rejected(self, tiny_backbone):
        session = InferenceSession.__new__(InferenceSession)
        session.model = tiny_backbone
        with pytest.raises(SpecError, match="not a HeatViT"):
            SessionSpec.from_session(session)


class TestSessionPickle:
    @pytest.mark.parametrize("backend,dtype", [("tensor", None),
                                               ("fastpath", "float32")])
    def test_pickle_round_trip_parity(self, model, tiny_dataset,
                                      backend, dtype):
        session = make_session(model, backend=backend, dtype=dtype)
        session.submit(tiny_dataset.images[:8])      # warm the workspace
        clone = pickle.loads(pickle.dumps(session))
        reference = session.submit(tiny_dataset.images[:12])
        result = clone.submit(tiny_dataset.images[:12])
        np.testing.assert_array_equal(result.logits, reference.logits)

    def test_fallback_selector_session_pickles(self, tiny_backbone,
                                               tiny_dataset):
        """Sessions a SessionSpec cannot describe still cross the
        process boundary by pickle (the WorkerPool fallback road)."""
        model = HeatViT(
            tiny_backbone, {1: 0.6}, rng=np.random.default_rng(5),
            classifier_factory=lambda rng: _PlainClassifier(
                tiny_backbone.config.embed_dim,
                tiny_backbone.config.num_heads, rng))
        model.eval()
        session = make_session(model, backend="fastpath", dtype="float32")
        clone = pickle.loads(pickle.dumps(session))
        np.testing.assert_array_equal(
            clone.submit(tiny_dataset.images[:6]).logits,
            session.submit(tiny_dataset.images[:6]).logits)

    def test_compiled_model_pickles_with_empty_workspace(
            self, model, tiny_dataset):
        compiled = compile_model(model, dtype=np.float64)
        tokens = np.array(compiled.embed(tiny_dataset.images[:4]))
        compiled.forward(tokens)                     # warm the workspace
        clone = pickle.loads(pickle.dumps(compiled))
        assert isinstance(clone, CompiledModel)
        assert len(clone._default_ws) == 0           # scratch not shipped
        np.testing.assert_array_equal(clone.forward(tokens),
                                      compiled.forward(tokens))


def _child_rebuild(spec, images, out_queue):
    """Spawn-target: rebuild the session from its spec and run it."""
    session = spec.build()
    out_queue.put(session.submit(images).logits)


class TestChildProcessRebuild:
    def test_spawned_child_matches_parent_bitwise(self, model,
                                                  tiny_dataset):
        """The real thing: a spawn-context child process rebuilds the
        session from config + weights and produces identical logits."""
        session = make_session(model)
        reference = session.submit(tiny_dataset.images[:8]).logits
        ctx = multiprocessing.get_context("spawn")
        out_queue = ctx.Queue()
        child = ctx.Process(target=_child_rebuild,
                            args=(session.spec(),
                                  tiny_dataset.images[:8], out_queue))
        child.start()
        try:
            logits = out_queue.get(timeout=120)
        finally:
            child.join(timeout=30)
        assert child.exitcode == 0
        np.testing.assert_array_equal(logits, reference)


class _PlainClassifier(nn.Module):
    """A classifier SessionSpec cannot describe (no config knob)."""

    def __init__(self, embed_dim, num_heads, rng):
        super().__init__()
        self.num_heads = num_heads
        self.score = nn.Linear(embed_dim, 2, rng=rng)

    def forward(self, x, mask=None):
        x = Tensor.ensure(x)
        batch, tokens, _ = x.shape
        probs = F.softmax(self.score(x), axis=-1)
        probs = probs.reshape(batch, 1, tokens, 2)
        return probs + Tensor(np.zeros((batch, self.num_heads, tokens, 2)))
