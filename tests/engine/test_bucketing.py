"""Unit tests for the bucketing policy and the engine's bookkeeping."""

import numpy as np
import pytest

from repro.core import HeatViT, PruningRecord
from repro.core.latency import LatencySparsityTable
from repro.cost import CostModel
from repro.engine import (BucketedExecutor, BucketingPolicy, group_exact,
                          plan_buckets, plan_cost_ms)


def covered_indices(plans):
    return sorted(int(i) for plan in plans for i in plan.indices)


def flat_cost_model(bucket_overhead_ms, per_block_ms=1.0):
    """Length-independent block cost: padding is free, only bucket
    launches cost -- the cleanest lens on the merge rule."""
    table = LatencySparsityTable({0.5: per_block_ms, 1.0: per_block_ms})
    return CostModel(table, num_patches=196,
                     bucket_overhead_ms=bucket_overhead_ms,
                     batch_overhead_ms=bucket_overhead_ms)


class TestCostAwarePlanBuckets:
    def test_overhead_merges_what_the_heuristic_keeps_apart(self):
        """Two big far-apart groups: the length-gap heuristic refuses
        the merge (pad 10 > pad_limit), but with free padding and a
        real bucket overhead one launch is strictly cheaper."""
        lengths = [20] * 8 + [10] * 8
        policy = BucketingPolicy(pad_limit=4)
        assert len(plan_buckets(lengths, policy)) == 2
        plans = plan_buckets(lengths, policy,
                             cost_model=flat_cost_model(1.0))
        assert len(plans) == 1
        assert plans[0].padded_length == 20
        assert covered_indices(plans) == list(range(16))

    def test_expensive_padding_keeps_buckets_apart(self):
        """Same shape, but padding costs more than the saved launch:
        the cost branch must not fire and the heuristic plan stands."""
        steep = CostModel(
            LatencySparsityTable({0.5: 1.0, 1.0: 100.0}), num_patches=20,
            bucket_overhead_ms=0.01, batch_overhead_ms=0.01)
        lengths = [20] * 8 + [10] * 8
        policy = BucketingPolicy(pad_limit=4)
        plans = plan_buckets(lengths, policy, cost_model=steep)
        assert [p.padded_length for p in plans] == [20, 10]

    def test_plan_cost_ms_prices_partition(self):
        model = flat_cost_model(2.0, per_block_ms=3.0)
        plans = plan_buckets([20] * 4 + [10] * 4,
                             BucketingPolicy(allow_padding=False))
        # Two buckets of 4: each pays one launch + 4 members.
        assert plan_cost_ms(plans, model) == pytest.approx(
            2 * (2.0 + 4 * 3.0))


class TestGroupExact:
    def test_groups_descending_with_all_indices(self):
        lengths = [5, 7, 5, 9, 7, 7]
        pairs = group_exact(lengths)
        assert [length for length, _ in pairs] == [9, 7, 5]
        assert sorted(i for _, idx in pairs for i in idx) == list(range(6))
        np.testing.assert_array_equal(pairs[1][1], [1, 4, 5])


class TestPlanBuckets:
    def test_empty(self):
        assert plan_buckets([]) == []

    def test_all_same_length(self):
        plans = plan_buckets([12] * 7)
        assert len(plans) == 1
        assert plans[0].padded_length == 12
        assert not plans[0].needs_padding
        assert plans[0].padded_tokens == 0
        assert covered_indices(plans) == list(range(7))

    def test_no_padding_policy_one_bucket_per_length(self):
        lengths = [10, 11, 10, 12, 11]
        plans = plan_buckets(lengths, BucketingPolicy(allow_padding=False))
        assert [p.padded_length for p in plans] == [12, 11, 10]
        assert all(not p.needs_padding for p in plans)
        assert covered_indices(plans) == list(range(5))

    def test_small_nearby_groups_merge(self):
        # Singleton groups at 11 and 12 should fold into the 13 bucket.
        lengths = [13, 13, 13, 13, 12, 11]
        plans = plan_buckets(lengths, BucketingPolicy(pad_limit=4,
                                                      min_bucket=4))
        assert len(plans) == 1
        assert plans[0].padded_length == 13
        assert plans[0].padded_tokens == (13 - 12) + (13 - 11)
        assert covered_indices(plans) == list(range(6))

    def test_pad_limit_respected(self):
        lengths = [20] * 4 + [10]
        plans = plan_buckets(lengths, BucketingPolicy(pad_limit=4))
        assert len(plans) == 2
        assert all(p.padded_length - p.lengths.min() <= 4 for p in plans)

    def test_max_pad_fraction_respected(self):
        # pad 3 onto length 8 -> padded_length 11, fraction 3/11 > 0.2.
        lengths = [11, 11, 11, 11, 8]
        plans = plan_buckets(lengths,
                             BucketingPolicy(pad_limit=8,
                                             max_pad_fraction=0.2))
        assert len(plans) == 2

    def test_large_groups_stand_alone(self):
        # Two big groups five tokens apart: merging would pay 8 * 5 = 40
        # padded tokens, more than one 30-token virtual sequence, and
        # neither group is below min_bucket -- so they stay separate.
        lengths = [30] * 8 + [25] * 8
        plans = plan_buckets(lengths, BucketingPolicy(pad_limit=8,
                                                      min_bucket=4))
        assert len(plans) == 2

    def test_large_groups_merge_when_padding_is_cheap(self):
        # One token of padding across 8 images costs 8 tokens, less than
        # one 30-token virtual sequence: merging is profitable.
        lengths = [30] * 8 + [29] * 8
        plans = plan_buckets(lengths, BucketingPolicy(pad_limit=8,
                                                      min_bucket=4))
        assert len(plans) == 1
        assert plans[0].padded_tokens == 8

    def test_every_index_exactly_once(self):
        rng = np.random.default_rng(3)
        lengths = rng.integers(5, 40, size=100)
        for policy in [BucketingPolicy(), BucketingPolicy(pad_limit=0),
                       BucketingPolicy(allow_padding=False),
                       BucketingPolicy(pad_limit=64, max_pad_fraction=1.0,
                                       min_bucket=200)]:
            plans = plan_buckets(lengths, policy)
            assert covered_indices(plans) == list(range(100))
            for plan in plans:
                assert plan.padded_length == int(plan.lengths.max())
                np.testing.assert_array_equal(
                    plan.lengths, lengths[plan.indices])

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            BucketingPolicy(pad_limit=-1)
        with pytest.raises(ValueError):
            BucketingPolicy(max_pad_fraction=1.5)
        with pytest.raises(ValueError):
            BucketingPolicy(min_bucket=0)


class TestEngineBookkeeping:
    """Per-stage token-count bookkeeping in the PruningRecord."""

    @pytest.fixture()
    def model(self, tiny_backbone):
        model = HeatViT(tiny_backbone, {1: 0.6, 3: 0.4},
                        rng=np.random.default_rng(5))
        model.eval()
        return model

    def test_record_matches_reference(self, model, tiny_dataset):
        images = tiny_dataset.images[:12]
        ref_record = PruningRecord()
        model.forward_pruned(images, record=ref_record)
        record = PruningRecord()
        BucketedExecutor(model).run(images, record=record)
        assert len(record.tokens_per_stage) == 2
        for engine_counts, ref_counts in zip(record.tokens_per_stage,
                                             ref_record.tokens_per_stage):
            np.testing.assert_array_equal(engine_counts, ref_counts)
        assert record.cumulative_keep == ref_record.cumulative_keep

    def test_stage_stats_cover_all_images(self, model, tiny_dataset):
        images = tiny_dataset.images[:12]
        result = BucketedExecutor(model).run(images)
        assert len(result.stage_stats) == 2
        for stats in result.stage_stats:
            assert sum(stats.bucket_sizes) == 12
            assert stats.num_buckets == len(stats.bucket_sizes)
            assert stats.padded_tokens >= 0

    def test_no_padding_policy_reports_zero_padding(self, model,
                                                    tiny_dataset):
        images = tiny_dataset.images[:12]
        executor = BucketedExecutor(
            model, BucketingPolicy(allow_padding=False))
        result = executor.run(images)
        assert all(s.padded_tokens == 0 for s in result.stage_stats)

    def test_counts_monotone_and_bounded(self, model, tiny_dataset):
        """Token counts never grow across stages and never hit zero."""
        record = PruningRecord()
        BucketedExecutor(model).run(tiny_dataset.images[:12],
                                    record=record)
        previous = np.full(12, model.config.num_tokens + 1)  # + package
        for counts in record.tokens_per_stage:
            assert np.all(counts >= 2)        # CLS + at least one token
            assert np.all(counts <= previous)
            previous = counts
