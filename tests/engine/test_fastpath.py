"""Parity and behavior suite for the compiled inference fast path.

The Tensor modules are the reference implementation; the fast path must
reproduce them:

* float64 compiles match ``forward_pruned`` to within the engine's 1e-8
  bound (near-bitwise in practice);
* float32 compiles stay within 1e-5 logits with IDENTICAL token-keep
  decisions and argmax;
* both hold across batch sizes, packager settings, masked (padded
  bucket) and unmasked execution, ragged buckets, and chunked
  submissions.

Also pinned here: workspace buffer reuse across submissions, the
Tensor-module fallback for non-compilable selector classifiers, dtype
handling of the padding/masking/gather helpers, and the
attention-recording policy of the deployed paths.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import HeatViT, PruningRecord
from repro.core.gather import (prune_group_sequences, prune_image_sequence,
                               weighted_package)
from repro.engine import (BucketedExecutor, BucketingPolicy, CompileError,
                          InferenceSession, Workspace, compile_model)
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.vit.attention import (key_padding_mask, pad_token_sequences,
                                 suppress_attention_recording)

F64_TOL = 1e-8
F32_TOL = 1e-5


def make_model(backbone, selector_blocks, *, use_packager=True, seed=42,
               classifier_factory=None):
    model = HeatViT(backbone, selector_blocks,
                    rng=np.random.default_rng(seed),
                    use_packager=use_packager,
                    classifier_factory=classifier_factory)
    model.eval()
    return model


def assert_backend_parity(model, images, *, dtype, tol, batch_size=32,
                          policy=None):
    """Fast-path submission vs the per-image reference loop."""
    record_ref = PruningRecord()
    ref = model.forward_pruned(images, record=record_ref)
    session = InferenceSession(model, batch_size=batch_size, policy=policy,
                               backend="fastpath", dtype=dtype)
    record = PruningRecord()
    result = session.submit(images, record=record)
    np.testing.assert_allclose(result.logits, ref.data, rtol=0, atol=tol)
    # Identical keep decisions: the per-stage token counts are a direct
    # function of every selector's keep mask.
    assert len(record.tokens_per_stage) == len(record_ref.tokens_per_stage)
    for counts, ref_counts in zip(record.tokens_per_stage,
                                  record_ref.tokens_per_stage):
        np.testing.assert_array_equal(counts, ref_counts)
    np.testing.assert_array_equal(result.logits.argmax(axis=-1),
                                  ref.data.argmax(axis=-1))
    return result


class TestCompiledForwardParity:
    """compile_model on a plain backbone vs the Tensor block stack."""

    @pytest.mark.parametrize("dtype,tol", [(np.float64, 1e-12),
                                           (np.float32, F32_TOL)])
    def test_dense_stack(self, tiny_backbone, tiny_dataset, dtype, tol):
        images = tiny_dataset.images[:5]
        compiled = compile_model(tiny_backbone, dtype=dtype)
        with nn.no_grad():
            x = tiny_backbone.embed(images)
            ref = x
            for block in tiny_backbone.blocks:
                ref = block(ref)
            ref_logits = tiny_backbone.classify(ref)
        tokens = compiled.embed(images)
        np.testing.assert_allclose(tokens, x.data, rtol=0, atol=tol)
        hidden = compiled.forward(tokens)
        np.testing.assert_allclose(hidden, ref.data, rtol=0, atol=tol)
        np.testing.assert_allclose(compiled.classify(hidden),
                                   ref_logits.data, rtol=0, atol=tol)

    @pytest.mark.parametrize("dtype,tol", [(np.float64, 1e-12),
                                           (np.float32, F32_TOL)])
    def test_masked_stack(self, tiny_backbone, tiny_dataset, dtype, tol):
        """Padded keys masked out: fastpath matches the Tensor blocks."""
        images = tiny_dataset.images[:4]
        compiled = compile_model(tiny_backbone, dtype=dtype)
        tokens = compiled.embed(images)
        mask = np.ones((4, tokens.shape[1]))
        mask[:, -3:] = 0.0
        with nn.no_grad():
            ref = Tensor(np.asarray(tokens, dtype=np.float64))
            for block in tiny_backbone.blocks:
                ref = block(ref, key_mask=mask)
        out = compiled.forward(tokens, key_mask=mask)
        np.testing.assert_allclose(out, ref.data, rtol=0, atol=tol)

    def test_forward_does_not_mutate_input(self, tiny_backbone,
                                           tiny_dataset):
        compiled = compile_model(tiny_backbone, dtype=np.float64)
        tokens = np.array(compiled.embed(tiny_dataset.images[:2]))
        before = tokens.copy()
        compiled.forward(tokens)
        np.testing.assert_array_equal(tokens, before)


class TestEngineBackendParity:
    """InferenceSession(backend="fastpath") vs forward_pruned."""

    @pytest.mark.parametrize("batch", [1, 3, 8, 17])
    @pytest.mark.parametrize("dtype,tol", [(np.float64, F64_TOL),
                                           (np.float32, F32_TOL)])
    def test_batches_both_dtypes(self, tiny_backbone, tiny_dataset, batch,
                                 dtype, tol):
        model = make_model(tiny_backbone, {1: 0.6, 3: 0.4})
        assert_backend_parity(model, tiny_dataset.images[:batch],
                              dtype=dtype, tol=tol)

    @pytest.mark.parametrize("use_packager", [True, False])
    def test_packager_modes(self, tiny_backbone, tiny_dataset,
                            use_packager):
        model = make_model(tiny_backbone, {1: 0.6, 3: 0.4},
                           use_packager=use_packager)
        assert_backend_parity(model, tiny_dataset.images[:11],
                              dtype=np.float32, tol=F32_TOL)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_models_ragged_stages(self, tiny_backbone, tiny_dataset,
                                         seed):
        """Three selectors produce genuinely ragged per-stage buckets."""
        model = make_model(tiny_backbone, {1: 0.8, 2: 0.55, 3: 0.35},
                           seed=seed)
        result = assert_backend_parity(model, tiny_dataset.images[:13],
                                       dtype=np.float32, tol=F32_TOL)
        assert len(result.tokens_per_stage) == 3

    @pytest.mark.parametrize("policy", [
        None,
        BucketingPolicy(allow_padding=False),
        BucketingPolicy(pad_limit=64, max_pad_fraction=1.0, min_bucket=64),
    ], ids=["default", "no-padding", "greedy"])
    def test_policy_invariance(self, tiny_backbone, tiny_dataset, policy):
        model = make_model(tiny_backbone, {1: 0.6, 2: 0.45})
        assert_backend_parity(model, tiny_dataset.images[:17],
                              dtype=np.float64, tol=F64_TOL, policy=policy)

    def test_chunked_matches_one_shot(self, tiny_backbone, tiny_dataset):
        model = make_model(tiny_backbone, {1: 0.6, 3: 0.4})
        small = assert_backend_parity(model, tiny_dataset.images[:17],
                                      dtype=np.float64, tol=F64_TOL,
                                      batch_size=4)
        large = assert_backend_parity(model, tiny_dataset.images[:17],
                                      dtype=np.float64, tol=F64_TOL,
                                      batch_size=17)
        np.testing.assert_allclose(small.logits, large.logits, rtol=0,
                                   atol=F64_TOL)

    def test_selector_before_block_zero(self, tiny_backbone, tiny_dataset):
        model = make_model(tiny_backbone, {0: 0.7, 2: 0.5})
        assert_backend_parity(model, tiny_dataset.images[:9],
                              dtype=np.float32, tol=F32_TOL)

    def test_dense_no_selectors(self, tiny_backbone, tiny_dataset):
        model = make_model(tiny_backbone, {})
        assert_backend_parity(model, tiny_dataset.images[:5],
                              dtype=np.float64, tol=F64_TOL)

    def test_empty_batch(self, tiny_backbone):
        model = make_model(tiny_backbone, {1: 0.6})
        session = InferenceSession(model, batch_size=8, backend="fastpath")
        result = session.submit(np.zeros((0, 3, 16, 16)))
        assert result.logits.shape == (0, model.config.num_classes)

    def test_scheduler_serves_fastpath_sessions(self, tiny_backbone,
                                                tiny_dataset):
        """End-to-end through the request scheduler."""
        from repro.serving import Scheduler, VirtualClock

        model = make_model(tiny_backbone, {1: 0.6, 3: 0.4})
        images = tiny_dataset.images[:6]
        ref = model.forward_pruned(images)
        scheduler = Scheduler(clock=VirtualClock())
        scheduler.register("fast", model, batch_size=8,
                           backend="fastpath", dtype=np.float64)
        assert scheduler.sessions[0].session.backend == "fastpath"
        ids = [scheduler.submit(images[i]) for i in range(6)]
        results = {r.request_id: r for r in scheduler.flush()}
        logits = np.concatenate([results[i].logits for i in ids], axis=0)
        np.testing.assert_allclose(logits, ref.data, rtol=0, atol=F64_TOL)


class TestCompiledSelector:
    """Dense and ragged selector kernels vs the Tensor module."""

    @pytest.mark.parametrize("dtype,tol", [(np.float64, 1e-12),
                                           (np.float32, 1e-5)])
    def test_dense_select_matches_module(self, tiny_backbone,
                                         tiny_dataset, dtype, tol):
        model = make_model(tiny_backbone, {1: 0.6})
        compiled = compile_model(model, dtype=dtype)
        patches = np.asarray(
            compiled.embed(tiny_dataset.images[:6])[:, 1:, :])
        keep, packages = compiled.select(0, patches)
        with nn.no_grad():
            out = model.selectors[0](
                Tensor(np.asarray(patches, dtype=np.float64)), hard=False)
        np.testing.assert_array_equal(keep, out.decision.data > 0.5)
        np.testing.assert_allclose(packages, out.package.data[:, 0, :],
                                   rtol=0, atol=tol)

    def test_ragged_select_matches_dense_groups(self, tiny_backbone,
                                                tiny_dataset):
        """One ragged pipeline == one dense select per exact group."""
        model = make_model(tiny_backbone, {1: 0.6})
        compiled = compile_model(model, dtype=np.float64)
        tokens = compiled.embed(tiny_dataset.images[:6])
        groups = [np.array(tokens[:3, 1:, :]),
                  np.array(tokens[3:, 1:14, :])]      # two lengths
        flat = np.concatenate([g.reshape(-1, g.shape[-1])
                               for g in groups], axis=0)
        counts = [groups[0].shape[1]] * 3 + [groups[1].shape[1]] * 3
        keep_flat, packages = compiled.select_ragged(0, flat, counts)
        offset, image = 0, 0
        for group in groups:
            g, n = group.shape[0], group.shape[1]
            keep_ref, packages_ref = compiled.select(0, group)
            np.testing.assert_array_equal(
                keep_flat[offset:offset + g * n].reshape(g, n), keep_ref)
            np.testing.assert_allclose(packages[image:image + g],
                                       packages_ref, rtol=0, atol=1e-12)
            offset += g * n
            image += g

    def test_ragged_select_works_for_fallback(self, tiny_backbone,
                                              tiny_dataset):
        """Hybrid-fallback selectors (non-stock classifier) run the
        ragged pipeline too, matching per-group dense evaluation and
        the reference module's decisions."""
        model = make_model(
            tiny_backbone, {1: 0.6},
            classifier_factory=lambda rng: _PlainClassifier(
                tiny_backbone.config.embed_dim,
                tiny_backbone.config.num_heads, rng))
        compiled = compile_model(model)
        assert all(s.fallback_module is not None
                   for s in compiled.selectors)
        tokens = compiled.embed(tiny_dataset.images[:6])
        groups = [np.array(tokens[:3, 1:, :]),
                  np.array(tokens[3:, 1:14, :])]      # two lengths
        flat = np.concatenate([g.reshape(-1, g.shape[-1])
                               for g in groups], axis=0)
        counts = [groups[0].shape[1]] * 3 + [groups[1].shape[1]] * 3
        keep_flat, packages = compiled.select_ragged(0, flat, counts)
        offset, image = 0, 0
        for group in groups:
            g, n = group.shape[0], group.shape[1]
            keep_ref, packages_ref = compiled.select(0, group)
            with nn.no_grad():
                out = model.selectors[0](
                    Tensor(np.asarray(group, dtype=np.float64)),
                    hard=False)
            np.testing.assert_array_equal(keep_ref,
                                          out.decision.data > 0.5)
            np.testing.assert_array_equal(
                keep_flat[offset:offset + g * n].reshape(g, n), keep_ref)
            np.testing.assert_allclose(packages[image:image + g],
                                       packages_ref, rtol=0, atol=1e-6)
            offset += g * n
            image += g


class TestActivationLowering:
    @pytest.mark.parametrize("activation", [nn.ReLU, nn.Hardswish,
                                            nn.Sigmoid, nn.Identity])
    def test_builtin_activations_compile(self, tiny_backbone,
                                         tiny_dataset, activation):
        """Selectors built with any stock activation lower natively and
        keep reference parity."""
        model = make_model(tiny_backbone, {1: 0.6, 3: 0.4})
        for selector in model.selectors:
            for seq in (selector.classifier.feature_mlp,
                        selector.classifier.classifier_mlp):
                for name, module in list(seq._modules.items()):
                    if isinstance(module, nn.GELU):
                        seq.register_module(name, activation())
        assert_backend_parity(model, tiny_dataset.images[:7],
                              dtype=np.float64, tol=F64_TOL)

    def test_unknown_activation_falls_back(self, tiny_backbone,
                                           tiny_dataset):
        """An activation the fast path cannot lower natively routes
        through the Tensor module, still matching the reference."""

        class Softsign(nn.Module):
            def forward(self, x):
                x = Tensor.ensure(x)
                return x / (Tensor(np.abs(x.data)) + 1.0)

        model = make_model(tiny_backbone, {1: 0.6})
        for seq in (model.selectors[0].classifier.feature_mlp,
                    model.selectors[0].classifier.classifier_mlp):
            for name, module in list(seq._modules.items()):
                if isinstance(module, nn.GELU):
                    seq.register_module(name, Softsign())
        assert_backend_parity(model, tiny_dataset.images[:7],
                              dtype=np.float64, tol=F64_TOL)


class TestConstruction:
    def test_unknown_backend_rejected(self, tiny_backbone):
        model = make_model(tiny_backbone, {1: 0.6})
        with pytest.raises(ValueError, match="backend"):
            InferenceSession(model, backend="gpu")
        with pytest.raises(ValueError, match="backend"):
            BucketedExecutor(model, backend="gpu")

    def test_tensor_backend_is_float64_only(self, tiny_backbone):
        model = make_model(tiny_backbone, {1: 0.6})
        with pytest.raises(ValueError, match="float64-only"):
            InferenceSession(model, backend="tensor", dtype=np.float32)
        session = InferenceSession(model, backend="tensor",
                                   dtype=np.float64)
        assert session.dtype == np.float64

    def test_compile_rejects_bad_dtype_and_gelu(self, tiny_backbone):
        with pytest.raises(CompileError):
            compile_model(tiny_backbone, dtype=np.float16)
        with pytest.raises(CompileError):
            compile_model(tiny_backbone, gelu="sigmoid")
        with pytest.raises(CompileError):
            compile_model(object())

    def test_session_exposes_backend_and_dtype(self, tiny_backbone):
        model = make_model(tiny_backbone, {1: 0.6})
        session = InferenceSession(model, backend="fastpath")
        assert session.backend == "fastpath"
        assert session.dtype == np.float32
        assert session.executor.compiled is not None

    def test_gelu_tanh_compile_is_looser(self, tiny_backbone,
                                         tiny_dataset):
        """The tanh GELU is opt-in and NOT parity grade: close at the
        1e-2 level but measurably off the exact activation."""
        images = tiny_dataset.images[:3]
        exact = compile_model(tiny_backbone, dtype=np.float64)
        tanh = compile_model(tiny_backbone, dtype=np.float64, gelu="tanh")
        a = exact.classify(exact.forward(exact.embed(images)))
        b = tanh.classify(tanh.forward(tanh.embed(images)))
        assert np.abs(a - b).max() < 1e-1
        assert np.abs(a - b).max() > 0.0


class TestWorkspaceReuse:
    def test_no_new_buffers_on_repeat_submission(self, tiny_backbone,
                                                 tiny_dataset):
        """Steady traffic must reuse every scratch buffer: the second
        identical submission allocates nothing."""
        model = make_model(tiny_backbone, {1: 0.6, 3: 0.4})
        session = InferenceSession(model, batch_size=8, backend="fastpath")
        images = tiny_dataset.images[:8]
        session.submit(images)
        ws = session.executor.workspace
        buffers, misses = len(ws), ws.misses
        session.submit(images)
        assert len(ws) == buffers
        assert ws.misses == misses
        assert ws.hits > 0
        assert ws.nbytes > 0

    def test_pool_is_bounded_by_eviction(self):
        """An open-ended stream of shapes must not grow the pool past
        max_buffers (long-lived sessions see arbitrarily many
        (batch, padded_length) combinations)."""
        ws = Workspace(np.float32, max_buffers=8)
        for size in range(1, 50):
            ws.take("bucket", (size, 4))
        assert len(ws) == 8
        assert ws.evictions == 50 - 1 - 8
        # Hot keys keep being served from the pool after eviction churn.
        survivor = ws.take("bucket", (49, 4))
        assert ws.take("bucket", (49, 4)) is survivor
        with pytest.raises(ValueError):
            Workspace(np.float32, max_buffers=0)

    def test_take_returns_same_buffer_and_clear(self):
        ws = Workspace(np.float32)
        a = ws.take("x", (4, 4))
        b = ws.take("x", (4, 4))
        assert a is b
        assert ws.misses == 1 and ws.hits == 1
        c = ws.take("x", (2, 4))
        assert c is not a
        ones = ws.ones("ones", (3, 1))
        np.testing.assert_array_equal(ones, np.ones((3, 1), np.float32))
        assert ws.full("mv", (4, 1), 0.25)[0, 0] == np.float32(0.25)
        ws.clear()
        assert len(ws) == 0


class _PlainClassifier(nn.Module):
    """A token classifier the fast path cannot lower (exercises the
    Tensor-module fallback): one Linear scoring broadcast over heads."""

    def __init__(self, embed_dim, num_heads, rng):
        super().__init__()
        self.num_heads = num_heads
        self.score = nn.Linear(embed_dim, 2, rng=rng)

    def forward(self, x, mask=None):
        x = Tensor.ensure(x)
        batch, tokens, _ = x.shape
        probs = F.softmax(self.score(x), axis=-1)          # (B, N, 2)
        probs = probs.reshape(batch, 1, tokens, 2)
        return probs + Tensor(np.zeros((batch, self.num_heads, tokens, 2)))


class TestSelectorFallback:
    def test_non_stock_classifier_falls_back_with_parity(
            self, tiny_backbone, tiny_dataset):
        model = make_model(
            tiny_backbone, {1: 0.6, 3: 0.4},
            classifier_factory=lambda rng: _PlainClassifier(
                tiny_backbone.config.embed_dim,
                tiny_backbone.config.num_heads, rng))
        compiled = compile_model(model, dtype=np.float64)
        assert all(s.fallback_module is not None
                   for s in compiled.selectors)
        assert_backend_parity(model, tiny_dataset.images[:9],
                              dtype=np.float64, tol=F64_TOL)

    def test_stock_classifier_compiles_fully(self, tiny_backbone):
        model = make_model(tiny_backbone, {1: 0.6})
        compiled = compile_model(model)
        assert all(s.fallback_module is None for s in compiled.selectors)


class TestDtypeThreading:
    """Satellite: float32 batches must not be upcast by padding/masks
    or the gather path."""

    def test_pad_token_sequences_preserves_float32(self):
        seqs = [np.ones((3, 4), np.float32), np.ones((5, 4), np.float32)]
        stacked, mask = pad_token_sequences(seqs)
        assert stacked.dtype == np.float32
        assert mask.dtype == np.float32

    def test_pad_token_sequences_default_stays_float64(self):
        seqs = [np.ones((3, 4)), np.ones((5, 4))]
        stacked, mask = pad_token_sequences(seqs)
        assert stacked.dtype == np.float64
        assert mask.dtype == np.float64
        # Non-float input also computes in float64.
        stacked, _ = pad_token_sequences([np.ones((2, 4), dtype=int)])
        assert stacked.dtype == np.float64

    def test_pad_token_sequences_explicit_dtype(self):
        seqs = [np.ones((3, 4)), np.ones((5, 4))]
        stacked, mask = pad_token_sequences(seqs, dtype=np.float32)
        assert stacked.dtype == np.float32
        assert mask.dtype == np.float32

    def test_key_padding_mask_dtype(self):
        mask = key_padding_mask([2, 3], 4, dtype=np.float32)
        assert mask.dtype == np.float32
        np.testing.assert_array_equal(
            mask, [[1, 1, 0, 0], [1, 1, 1, 0]])

    def test_weighted_package_preserves_dtype(self):
        tokens = np.ones((3, 4), np.float32)
        out = weighted_package(tokens, np.array([1.0, 2.0, 0.5]))
        assert out.dtype == np.float32
        out64 = weighted_package(tokens.astype(np.float64), [1, 2, 0.5])
        assert out64.dtype == np.float64

    def test_group_gather_preserves_dtype(self, rng):
        x = rng.normal(size=(3, 6, 4)).astype(np.float32)
        keep = rng.random((3, 5)) > 0.4
        keep[:, 0] = True
        packages = rng.normal(size=(3, 4))     # float64 on purpose
        sequences, flags = prune_group_sequences(
            x, keep, use_packager=True, has_package=False,
            packages=packages)
        assert all(s.dtype == np.float32 for s in sequences)


class TestGroupGatherEquivalence:
    """prune_group_sequences must equal the per-image reference helper."""

    @pytest.mark.parametrize("use_packager,has_package", [
        (True, False), (True, True), (False, False), (False, True)])
    def test_matches_per_image(self, rng, use_packager, has_package):
        g, tokens, dim = 5, 8, 6
        x = rng.normal(size=(g, tokens, dim))
        n = tokens - 1 - (1 if has_package else 0)
        keep = rng.random((g, n)) > 0.5
        keep[:, -1] = True                      # >= 1 keep per image
        keep[0, :] = True                       # one prune-free image
        packages = rng.normal(size=(g, dim))
        group_seqs, group_flags = prune_group_sequences(
            x, keep, use_packager=use_packager, has_package=has_package,
            packages=packages)
        for row in range(g):
            ref_seq, ref_flag = prune_image_sequence(
                x[row], keep[row], use_packager=use_packager,
                has_package=has_package, package=packages[row])
            np.testing.assert_array_equal(group_seqs[row], ref_seq)
            assert group_flags[row] == ref_flag

    def test_shape_validation(self, rng):
        x = rng.normal(size=(2, 6, 4))
        with pytest.raises(ValueError, match="keep_flags"):
            prune_group_sequences(x, np.ones((2, 9), bool),
                                  use_packager=False, has_package=False)
        keep = np.array([[True, False, True, True, True],
                         [True, True, True, True, True]])
        with pytest.raises(ValueError, match="packages"):
            prune_group_sequences(x, keep, use_packager=True,
                                  has_package=False)


class TestAttentionRecordingPolicy:
    """Satellite: deployed paths skip the (B, h, N, N) copies; the
    analysis paths keep them."""

    def _fresh_model(self, tiny_config):
        from repro.vit import VisionTransformer

        backbone = VisionTransformer(tiny_config,
                                     rng=np.random.default_rng(3))
        backbone.eval()
        return make_model(backbone, {1: 0.6, 3: 0.4}, seed=7)

    def test_forward_pruned_does_not_record(self, tiny_config,
                                            tiny_dataset):
        model = self._fresh_model(tiny_config)
        model.forward_pruned(tiny_dataset.images[:3])
        assert all(b.attn.last_attention is None
                   for b in model.backbone.blocks)
        assert all(b.attn.record_attention          # flag restored
                   for b in model.backbone.blocks)

    @pytest.mark.parametrize("backend", ["tensor", "fastpath"])
    def test_engine_does_not_record(self, tiny_config, tiny_dataset,
                                    backend):
        model = self._fresh_model(tiny_config)
        session = InferenceSession(model, batch_size=8, backend=backend)
        session.submit(tiny_dataset.images[:5])
        assert all(b.attn.last_attention is None
                   for b in model.backbone.blocks)

    def test_masked_forward_still_records(self, tiny_config,
                                          tiny_dataset):
        """The analysis / Fig. 5 path keeps the attention maps."""
        model = self._fresh_model(tiny_config)
        with nn.no_grad():
            model.forward(tiny_dataset.images[:2])
        for block in model.backbone.blocks:
            attn = block.attn.last_attention
            assert attn is not None
            assert attn.shape[0] == 2
            np.testing.assert_allclose(attn.sum(axis=-1), 1.0, atol=1e-9)

    def test_suppression_restores_prior_state(self, tiny_config,
                                              tiny_dataset):
        model = self._fresh_model(tiny_config)
        modules = [b.attn for b in model.backbone.blocks]
        modules[0].record_attention = False      # mixed prior state
        with suppress_attention_recording(modules):
            assert all(not m.record_attention for m in modules)
        assert not modules[0].record_attention
        assert all(m.record_attention for m in modules[1:])
