"""Online cost learning threaded through the engine hot path.

What these tests pin down: a ``learn_cost=True`` session measures its
own submissions (whole-batch and per-bucket walls) into its
:class:`repro.cost.OnlineCostModel` without changing what it computes
(identical keep decisions; logits within the engine parity bound of a
static session -- re-planned buckets may legally reorder GEMM
accumulation at the 1e-16 level); the executor's bucket-plan cache is
keyed by (policy, cost-model version) so stable traffic hits the cache
while significant coefficient drift invalidates it; and a
:class:`repro.engine.SessionSpec` rebuild carries the learned state to
worker processes.
"""

import pickle

import numpy as np
import pytest

from repro.core import HeatViT
from repro.cost import OnlineCostModel
from repro.engine import BucketedExecutor, BucketingPolicy, InferenceSession

TOLERANCE = 1e-8


@pytest.fixture()
def model(tiny_backbone):
    model = HeatViT(tiny_backbone, {1: 0.6, 2: 0.6},
                    rng=np.random.default_rng(5))
    model.eval()
    return model


@pytest.fixture()
def images(rng):
    return rng.normal(size=(12, 3, 16, 16))


class TestLearningSession:
    def test_learn_cost_wraps_and_binds(self, model):
        session = InferenceSession(model, batch_size=8, learn_cost=True)
        assert session.learns_cost
        assert isinstance(session.cost_model, OnlineCostModel)
        backend, dtype, bucket = session.cost_model.bound_key
        assert backend == "tensor"
        assert dtype == "float64"
        assert bucket == (12, 12)      # 0.6 on the 0.05 grid, twice

    def test_learn_cost_accepts_ready_online_model(self, model):
        warm = OnlineCostModel(
            InferenceSession(model, batch_size=8).cost_model)
        warm.observe_batch(8, 5.0, key="elsewhere")
        session = InferenceSession(model, batch_size=8, cost_model=warm,
                                   learn_cost=True)
        assert session.cost_model is warm        # no double wrap
        assert warm.samples("elsewhere") == (1, 0)

    def test_static_session_does_not_learn(self, model, images):
        session = InferenceSession(model, batch_size=8)
        assert not session.learns_cost
        session.submit(images)
        assert not hasattr(session.cost_model, "observe_batch")

    def test_submissions_feed_both_estimators(self, model, images):
        session = InferenceSession(model, batch_size=8, learn_cost=True)
        for _ in range(3):
            result = session.submit(images)
        batch_samples, bucket_samples = session.cost_model.samples()
        assert batch_samples == 3
        # Each submit: 2 chunks x (prefix segment + one per stage
        # bucket group) -- at least one bucket observation per chunk.
        assert bucket_samples >= 6
        # Stage telemetry carries the measured walls.
        assert all(s.wall_ms > 0 for s in result.stage_stats)

    def test_learning_preserves_results(self, model, images):
        static = InferenceSession(model, batch_size=8, backend="fastpath",
                                  dtype="float64")
        reference = static.submit(images)
        learning = InferenceSession(model, batch_size=8,
                                    backend="fastpath", dtype="float64",
                                    learn_cost=True)
        for _ in range(20):
            result = learning.submit(images)
        assert learning.cost_model.confident()
        np.testing.assert_allclose(result.logits, reference.logits,
                                   rtol=0, atol=TOLERANCE)
        for got, want in zip(result.tokens_per_stage,
                             reference.tokens_per_stage):
            np.testing.assert_array_equal(got, want)   # keep decisions
        np.testing.assert_array_equal(result.latency_ms,
                                      reference.latency_ms)

    def test_learned_pricing_departs_from_prior(self, model, images):
        session = InferenceSession(model, batch_size=8, learn_cost=True)
        prior = session.cost_model.prior
        static_ms = InferenceSession(
            model, batch_size=8, cost_model=prior
        ).estimated_batch_cost(12).total_ms
        for _ in range(12):
            session.submit(images)
        learned_ms = session.estimated_batch_cost(12).total_ms
        assert session.cost_model.confident()
        assert learned_ms != static_ms
        assert learned_ms > 0

    def test_retune_rebinds_key(self, model, images):
        session = InferenceSession(model, batch_size=8, learn_cost=True)
        session.submit(images)
        first_key = session.cost_model.bound_key
        model.set_keep_ratios([0.45, 0.45])
        session.submit(images)
        second_key = session.cost_model.bound_key
        assert first_key != second_key
        assert set(session.cost_model.keys) == {first_key, second_key}


class _TickClock:
    """Deterministic stand-in for the ``time`` module: every
    ``perf_counter`` call advances by a fixed step, so measured walls
    depend only on call counts -- identical submissions observe
    identical timings and the learned coefficients settle exactly."""

    def __init__(self, step_s=0.001):
        self.step_s = step_s
        self.now = 0.0

    def perf_counter(self):
        self.now += self.step_s
        return self.now


class TestVersionedPlanCache:
    def test_stable_traffic_hits_cache(self, model, images, monkeypatch):
        """The satellite regression: once coefficients settle, repeat
        length distributions are planned once and served from cache."""
        clock = _TickClock()
        monkeypatch.setattr("repro.engine.session.time", clock)
        monkeypatch.setattr("repro.engine.executor.time", clock)
        session = InferenceSession(model, batch_size=8, learn_cost=True)
        for _ in range(40):                      # warm-up + settle
            session.submit(images)
        executor = session.executor
        hits0, misses0 = (executor.plan_cache_hits,
                          executor.plan_cache_misses)
        version0 = session.cost_model.version
        for _ in range(25):
            session.submit(images)
        assert session.cost_model.version == version0
        assert executor.plan_cache_misses == misses0
        assert executor.plan_cache_hits > hits0

    def test_version_bump_invalidates_cached_plans(self, model, images):
        session = InferenceSession(model, batch_size=8, learn_cost=True)
        for _ in range(40):
            session.submit(images)
        misses0 = session.executor.plan_cache_misses
        # Force a coefficient jump far past the drift threshold: the
        # next submission must re-plan (cache miss), not reuse plans
        # priced by the stale coefficients.
        for _ in range(60):
            session.cost_model.observe_batch(12, 1e4, num_batches=2)
        session.submit(images)
        assert session.executor.plan_cache_misses > misses0

    def test_static_cost_model_still_caches(self, model, images):
        session = InferenceSession(model, batch_size=8)
        session.submit(images)
        hits0 = session.executor.plan_cache_hits
        session.submit(images)
        assert session.executor.plan_cache_hits > hits0
        assert session.executor.plan_cache_misses >= 1

    def test_cache_key_separates_policies(self, model):
        a = BucketedExecutor(model, BucketingPolicy())
        b = BucketedExecutor(model, BucketingPolicy(allow_padding=False))
        lengths = np.array([9, 9, 11, 11])
        key_a = (a.policy, None, lengths.tobytes())
        key_b = (b.policy, None, lengths.tobytes())
        assert key_a != key_b


class TestSpecCarriesLearnedState:
    def test_rebuild_preserves_learned_pricing(self, model, images):
        session = InferenceSession(model, batch_size=8, backend="fastpath",
                                   dtype="float64", learn_cost=True)
        reference = session.submit(images)
        for _ in range(12):
            session.submit(images)
        assert session.cost_model.confident()
        rebuilt = pickle.loads(pickle.dumps(session.spec())).build()
        assert rebuilt.learns_cost
        assert rebuilt.cost_model.samples() == session.cost_model.samples()
        assert rebuilt.cost_model.version == session.cost_model.version
        assert rebuilt.estimated_batch_cost(12).total_ms == (
            session.estimated_batch_cost(12).total_ms)
        result = rebuilt.submit(images)
        np.testing.assert_allclose(result.logits, reference.logits,
                                   rtol=0, atol=TOLERANCE)
        for got, want in zip(result.tokens_per_stage,
                             reference.tokens_per_stage):
            np.testing.assert_array_equal(got, want)
