"""Setup shim; metadata lives in pyproject.toml.

The sandbox lacks the `wheel` package, so PEP 660 editable installs fail;
`pip install -e . --no-build-isolation --no-use-pep517` (or plain
`python setup.py develop`) uses this shim instead.
"""
from setuptools import setup

setup()
